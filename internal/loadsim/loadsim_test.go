package loadsim

import (
	"testing"
	"time"

	"griffin/internal/core"
	"griffin/internal/sched"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSegmentsFromStats(t *testing.T) {
	qs := core.QueryStats{
		CPUTime: ms(12), // 2ms traced op + 10ms residual (ranking)
		GPUTime: ms(7),  // 5ms traced op + 2ms residual (transfer)
		Ops: []core.OpTrace{
			{Where: sched.GPU, Took: ms(5)},
			{Where: sched.CPU, Took: ms(2)},
		},
	}
	segs := SegmentsFromStats(qs)
	// Expect: GPU 5ms, CPU 2ms, GPU 2ms residual, CPU 10ms residual.
	want := []Segment{
		{ResGPU, ms(5)}, {ResCPU, ms(2)}, {ResGPU, ms(2)}, {ResCPU, ms(10)},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
	}
}

func TestSegmentsMergeAdjacent(t *testing.T) {
	qs := core.QueryStats{
		CPUTime: ms(5),
		Ops: []core.OpTrace{
			{Where: sched.CPU, Took: ms(2)},
			{Where: sched.CPU, Took: ms(3)},
		},
	}
	segs := SegmentsFromStats(qs)
	if len(segs) != 1 || segs[0] != (Segment{ResCPU, ms(5)}) {
		t.Fatalf("segments = %v, want one merged CPU 5ms", segs)
	}
}

func TestLightLoadNoQueueing(t *testing.T) {
	// At negligible load, response time equals service time.
	traces := make([][]Segment, 50)
	for i := range traces {
		traces[i] = []Segment{{ResCPU, ms(1)}, {ResGPU, ms(1)}}
	}
	res := Run(traces, Spec{CPUWorkers: 4, ArrivalRate: 1, Seed: 1}) // 1 q/s, 2ms service
	if got := res.Latencies.Max(); got > ms(3) {
		t.Fatalf("max latency %v under light load, want ~2ms", got)
	}
	if res.Latencies.Count() != 50 {
		t.Fatalf("completed %d queries", res.Latencies.Count())
	}
}

func TestHeavyLoadQueues(t *testing.T) {
	// Offered load far above capacity: latencies must blow up.
	traces := make([][]Segment, 200)
	for i := range traces {
		traces[i] = []Segment{{ResCPU, ms(10)}}
	}
	// Capacity = 4 workers / 10ms = 400 q/s; offer 2000 q/s.
	res := Run(traces, Spec{CPUWorkers: 4, ArrivalRate: 2000, Seed: 2})
	if res.Latencies.Percentile(99) < ms(50) {
		t.Fatalf("P99 %v under 5x overload, expected heavy queueing", res.Latencies.Percentile(99))
	}
	if res.CPUBusy < 0.5 {
		t.Fatalf("CPU utilization %v under overload", res.CPUBusy)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	traces := [][]Segment{{{ResGPU, ms(10)}}}
	res := Run(traces, Spec{CPUWorkers: 4, ArrivalRate: 100, Seed: 3})
	if res.GPUBusy <= 0 || res.GPUBusy > 1 {
		t.Fatalf("GPU utilization %v", res.GPUBusy)
	}
	if res.CPUBusy != 0 {
		t.Fatalf("CPU utilization %v for GPU-only trace", res.CPUBusy)
	}
}

func TestOffloadingHelpsUnderLoad(t *testing.T) {
	// The system effect the hybrid design buys: the same work, run as
	// CPU-only segments vs mostly-GPU segments, under an arrival rate the
	// CPU pool alone cannot sustain.
	n := 300
	cpuOnly := make([][]Segment, n)
	hybrid := make([][]Segment, n)
	for i := range cpuOnly {
		cpuOnly[i] = []Segment{{ResCPU, ms(8)}}
		hybrid[i] = []Segment{{ResGPU, ms(2)}, {ResCPU, ms(1)}}
	}
	spec := Spec{CPUWorkers: 4, ArrivalRate: 450, Seed: 4}
	rc := Run(cpuOnly, spec)
	rh := Run(hybrid, spec)
	if rh.Latencies.Percentile(99) >= rc.Latencies.Percentile(99) {
		t.Fatalf("hybrid P99 %v not better than cpu-only P99 %v under load",
			rh.Latencies.Percentile(99), rc.Latencies.Percentile(99))
	}
}

func TestEmptyAndDegenerateSpecs(t *testing.T) {
	if res := Run(nil, Spec{CPUWorkers: 4, ArrivalRate: 10, Seed: 5}); res.Latencies.Count() != 0 {
		t.Fatal("empty traces produced latencies")
	}
	traces := [][]Segment{{{ResCPU, ms(1)}}}
	if res := Run(traces, Spec{CPUWorkers: 0, ArrivalRate: 10}); res.Latencies.Count() != 0 {
		t.Fatal("zero workers should not run")
	}
	if res := Run(traces, Spec{CPUWorkers: 4, ArrivalRate: 0}); res.Latencies.Count() != 0 {
		t.Fatal("zero arrival rate should not run")
	}
}

func TestFCFSOrderPreserved(t *testing.T) {
	// Single worker, two queries arriving in order: the second waits for
	// the first (no overtaking on one resource).
	traces := [][]Segment{
		{{ResCPU, ms(10)}},
		{{ResCPU, ms(1)}},
	}
	res := Run(traces, Spec{CPUWorkers: 1, ArrivalRate: 1e6, Seed: 6})
	// Both arrive ~immediately; total makespan ~11ms means serial service.
	if res.Makespan < ms(10) {
		t.Fatalf("makespan %v too small for serial service", res.Makespan)
	}
	if res.Latencies.Max() < ms(10) {
		t.Fatalf("max latency %v: queueing not applied", res.Latencies.Max())
	}
}

func TestSegmentsFromPlanTrace(t *testing.T) {
	// Stats carrying a physical-plan trace replay operator by operator:
	// adjacent same-processor operators merge and nothing is residual.
	qs := core.QueryStats{
		CPUTime: ms(6),
		GPUTime: ms(9),
		Plan: []core.PlanRecord{
			{Where: sched.CPU, Took: ms(1)}, // fetch
			{Where: sched.GPU, Took: ms(4)}, // upload + decompress
			{Where: sched.GPU, Took: ms(5)}, // intersect
			{Where: sched.CPU, Took: ms(2)}, // migrated intersect
			{Where: sched.CPU, Took: ms(3)}, // score + topk
		},
	}
	segs := SegmentsFromStats(qs)
	want := []Segment{{ResCPU, ms(1)}, {ResGPU, ms(9)}, {ResCPU, ms(5)}}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v, want %v", segs, want)
	}
	var cpu, gpu time.Duration
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %v, want %v", i, segs[i], want[i])
		}
		if segs[i].Res == ResGPU {
			gpu += segs[i].D
		} else {
			cpu += segs[i].D
		}
	}
	// Plan replay conserves the stats' per-processor totals exactly.
	if cpu != qs.CPUTime || gpu != qs.GPUTime {
		t.Fatalf("replayed cpu=%v gpu=%v, stats cpu=%v gpu=%v", cpu, gpu, qs.CPUTime, qs.GPUTime)
	}
}
