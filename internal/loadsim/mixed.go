package loadsim

import (
	"math/rand"
	"time"

	"griffin/internal/ingest"
	"griffin/internal/stats"
)

// MutationKind labels one scripted write for RunMixed.
type MutationKind int

const (
	// MutAdd inserts a new document.
	MutAdd MutationKind = iota
	// MutUpdate replaces an existing document's tokens.
	MutUpdate
	// MutDelete tombstones an existing document.
	MutDelete
)

// Mutation is one scripted write in a mixed workload. Scripts are
// consumed in order, so a script that is valid sequentially (no update
// before its add, no double delete) stays valid under any interleaving
// RunMixed chooses.
type Mutation struct {
	Kind   MutationKind
	DocID  uint32
	Tokens []string
}

// MixedSpec parameterizes a mixed read/write run over a live engine.
type MixedSpec struct {
	// ArrivalRate is total operations per second (reads + writes),
	// Poisson as in Run/RunEngine.
	ArrivalRate float64
	// WriteFraction is the probability an arrival is a write while
	// scripted mutations remain; once the script is exhausted every
	// arrival is a read.
	WriteFraction float64
	// Seed drives arrivals and the read/write coin.
	Seed int64
	// Merge enables threshold merging: whenever the engine reports a
	// due merge (NeedsMerge), it is run at the current modeled time so
	// its re-encoding work contends with queries on the shared device.
	// With Merge false the delta grows unboundedly and every read pays
	// the widening reconcile cost — the no-merge control arm.
	Merge bool
}

// MixedResult is what RunMixed measures.
type MixedResult struct {
	// Reads counts read attempts; Failed the subset that errored.
	// Availability() = successful reads / read attempts.
	Reads  int
	Failed int
	// Writes counts applied mutations.
	Writes int
	// Latencies records successful read sojourn times (arrival to
	// completion, device queueing behind merges included).
	Latencies *stats.LatencyRecorder
	// DeltaPeak is the largest delta (records) observed after a write —
	// the freshness-lag high-water mark.
	DeltaPeak int
	// Makespan is the last completion time; GPUBusy the node busy
	// fraction over it.
	Makespan time.Duration
	GPUBusy  float64
	// Stats is the engine's final ingestion telemetry (merge counts,
	// device/CPU/stall time, residual lag).
	Stats ingest.Stats
}

// Availability returns the fraction of read attempts that succeeded
// (1.0 for a run with no reads).
func (r MixedResult) Availability() float64 {
	if r.Reads == 0 {
		return 1
	}
	return float64(r.Reads-r.Failed) / float64(r.Reads)
}

// RunMixed drives a live ingest.Engine under a Poisson stream of mixed
// reads and writes, the serving-under-mutation experiment: reads are
// timed sub-queries through the shared device runtime (RunEngine's
// discipline), writes apply scripted mutations to the delta, and — on
// the merge arm — due merges are priced at their trigger time on the
// same device timelines, so merge interference surfaces directly in
// read latency. Reads cycle through queries; the run ends when the
// read log is exhausted.
//
// Read errors are counted as failures rather than aborting the run, so
// availability under injected merge faults is measurable.
func RunMixed(e *ingest.Engine, queries [][]string, muts []Mutation, spec MixedSpec) (MixedResult, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	res := MixedResult{Latencies: stats.NewLatencyRecorder(len(queries))}
	if len(queries) == 0 || spec.ArrivalRate <= 0 {
		res.Stats = e.Stats()
		return res, nil
	}
	var t time.Duration
	next := 0 // next scripted mutation
	for qi := 0; qi < len(queries); {
		t += time.Duration(rng.ExpFloat64() / spec.ArrivalRate * float64(time.Second))
		if next < len(muts) && rng.Float64() < spec.WriteFraction {
			m := muts[next]
			next++
			var err error
			switch m.Kind {
			case MutAdd:
				err = e.Add(m.DocID, m.Tokens)
			case MutUpdate:
				err = e.Update(m.DocID, m.Tokens)
			default:
				err = e.Delete(m.DocID)
			}
			if err != nil {
				return res, err
			}
			res.Writes++
			if d := e.Stats().DeltaDocs; d > res.DeltaPeak {
				res.DeltaPeak = d
			}
			if spec.Merge && e.NeedsMerge() {
				if err := e.MergeAt(t); err != nil {
					return res, err
				}
			}
			continue
		}
		res.Reads++
		r, err := e.SearchAt(queries[qi], t)
		qi++
		if err != nil {
			res.Failed++
			continue
		}
		res.Latencies.Record(r.Stats.Latency)
		if end := t + r.Stats.Latency; end > res.Makespan {
			res.Makespan = end
		}
	}
	if node := e.Engine().Node(); node != nil {
		res.GPUBusy = node.Utilization()
	}
	res.Stats = e.Stats()
	return res, nil
}
