package loadsim

import (
	"context"
	"testing"
	"time"

	"griffin/internal/cluster"
	"griffin/internal/core"
	"griffin/internal/fault"
	"griffin/internal/workload"
)

// clusterFixture builds a corpus, a query log, and a cluster constructor
// (each call partitions the corpus fresh and builds dedicated replicas).
func clusterFixture(t testing.TB) ([][]string, func(shards int, timeout time.Duration) *cluster.Cluster) {
	t.Helper()
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    200_000,
		NumTerms:   50,
		MaxListLen: 60_000,
		MinListLen: 200,
		Alpha:      1.0,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 120, PopularityAlpha: 0.6, Seed: 22,
	})
	queries := make([][]string, len(log))
	for i, q := range log {
		queries[i] = q.Terms
	}
	mk := func(shards int, timeout time.Duration) *cluster.Cluster {
		ixs, err := workload.PartitionCorpus(c, shards)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.New(ixs, cluster.Config{
			Engine:       core.Config{Mode: core.Hybrid},
			TopK:         10,
			ShardTimeout: timeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		return cl
	}
	return queries, mk
}

// At light load the driven cluster reproduces isolated cluster latencies
// (no queueing), and every recorded sojourn obeys the critical-path
// decomposition Latency = MaxShard + Merge.
func TestRunClusterLightLoadMatchesIsolated(t *testing.T) {
	queries, mk := clusterFixture(t)
	queries = queries[:40]

	ref := mk(4, 0)
	want := make(map[time.Duration]bool, len(queries))
	for _, q := range queries {
		r, err := ref.Search(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[r.Stats.Latency] = true
	}

	cl := mk(4, 0)
	res, err := RunCluster(cl, queries, Spec{ArrivalRate: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latencies.Count() != len(queries) {
		t.Fatalf("recorded %d latencies, want %d", res.Latencies.Count(), len(queries))
	}
	if res.Degraded != 0 {
		t.Fatalf("light load degraded %d queries", res.Degraded)
	}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := res.Latencies.Percentile(p); !want[got] {
			t.Fatalf("P%v latency %v not among isolated cluster latencies", p, got)
		}
	}
	if res.MaxShardMean <= 0 || res.MergeMean <= 0 {
		t.Fatalf("latency decomposition empty: maxshard %v merge %v", res.MaxShardMean, res.MergeMean)
	}
	// Means decompose like the per-query identity they average.
	if diff := res.Latencies.Mean() - (res.MaxShardMean + res.MergeMean); diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("mean %v != maxshard %v + merge %v", res.Latencies.Mean(), res.MaxShardMean, res.MergeMean)
	}
	if res.GPUBusy <= 0 || res.GPUBusy > 1 {
		t.Fatalf("busiest-device utilization %v out of range", res.GPUBusy)
	}
}

// Overload accrues backlog on shard devices: sojourns grow past the
// light-load tail, demonstrating the shared-timeline contention survives
// the scatter-gather layer.
func TestRunClusterOverloadGrowsTail(t *testing.T) {
	queries, mk := clusterFixture(t)

	light, err := RunCluster(mk(2, 0), queries[:30], Spec{ArrivalRate: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mean := light.Latencies.Mean()
	if mean <= 0 {
		t.Fatal("zero mean service time")
	}

	over, err := RunCluster(mk(2, 0), queries, Spec{ArrivalRate: 3 / mean.Seconds(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if over.Latencies.Percentile(99) <= light.Latencies.Percentile(99) {
		t.Fatalf("overloaded P99 %v not above light-load P99 %v",
			over.Latencies.Percentile(99), light.Latencies.Percentile(99))
	}
}

// Under overload with a shard timeout, slow shards degrade their queries
// instead of stretching the critical path past the budget + merge.
func TestRunClusterTimeoutCapsCriticalPath(t *testing.T) {
	queries, mk := clusterFixture(t)

	light, err := RunCluster(mk(2, 0), queries[:30], Spec{ArrivalRate: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	mean := light.Latencies.Mean()
	budget := light.Latencies.Percentile(50)

	res, err := RunCluster(mk(2, budget), queries, Spec{ArrivalRate: 3 / mean.Seconds(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("overload with a median-latency budget degraded nothing")
	}
	// Every sojourn is bounded by the budget plus its merge; the max
	// merge cost is tiny relative to the budget, so P100 stays well under
	// twice the budget.
	if p100 := res.Latencies.Percentile(100); p100 > 2*budget {
		t.Fatalf("timeout did not cap the critical path: P100 %v, budget %v", p100, budget)
	}
}

func TestRunClusterDegenerate(t *testing.T) {
	_, mk := clusterFixture(t)
	cl := mk(2, 0)
	res, err := RunCluster(cl, nil, Spec{ArrivalRate: 10})
	if err != nil || res.Latencies.Count() != 0 {
		t.Fatalf("empty run: %v, %d latencies", err, res.Latencies.Count())
	}
	res, err = RunCluster(cl, [][]string{{"t000001"}}, Spec{})
	if err != nil || res.Latencies.Count() != 0 {
		t.Fatalf("zero rate: %v, %d latencies", err, res.Latencies.Count())
	}
}

// Chaos under load: with TolerateFailures set, all-shards-failed
// queries count as Failed instead of aborting the run, availability
// reflects both failures and degradations, and the self-healing
// counters accumulate across the run.
func TestRunClusterChaosAvailability(t *testing.T) {
	queries, _ := clusterFixture(t)
	queries = queries[:60]

	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    200_000,
		NumTerms:   50,
		MaxListLen: 60_000,
		MinListLen: 200,
		Alpha:      1.0,
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	mkChaos := func(hardened bool) *cluster.Cluster {
		ixs, err := workload.PartitionCorpus(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.Config{
			Engine:   core.Config{Mode: core.Hybrid},
			TopK:     10,
			Replicas: 2,
			Fault: fault.NewInjector(fault.Plan{Seed: 11, Rules: []fault.Rule{
				{Kind: fault.KernelLaunch, Rate: 0.2},
				{Kind: fault.EngineError, Rate: 0.2},
			}}),
		}
		if !hardened {
			cfg.Engine.NoCPUFallback = true
			cfg.Retries = -1
			cfg.Breaker = fault.BreakerConfig{Threshold: -1}
		}
		cl, err := cluster.New(ixs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		return cl
	}

	hard, err := RunCluster(mkChaos(true), queries, Spec{
		ArrivalRate: 50, Seed: 7, TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hard.Fallbacks == 0 {
		t.Fatal("20% device faults produced no CPU fallbacks")
	}
	if av := hard.Available(); av < 0.9 {
		t.Fatalf("hardened availability %.3f under 20%% faults, want >= 0.9", av)
	}

	brittle, err := RunCluster(mkChaos(false), queries, Spec{
		ArrivalRate: 50, Seed: 7, TolerateFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if brittle.Failed == 0 && brittle.Degraded == 0 {
		t.Fatal("brittle cluster absorbed every fault with self-healing off")
	}
	if brittle.Available() >= hard.Available() {
		t.Fatalf("brittle availability %.3f not below hardened %.3f",
			brittle.Available(), hard.Available())
	}
	// The recorder only holds answered queries: counts stay consistent.
	if hard.Latencies.Count()+hard.Failed != len(queries) {
		t.Fatalf("answered %d + failed %d != %d queries",
			hard.Latencies.Count(), hard.Failed, len(queries))
	}
}
