// Package pfordelta implements the PForDelta inverted-list compression
// scheme (Zukowski et al., ICDE 2006), the CPU-side baseline codec in
// Griffin.
//
// Lists of ascending docIDs are first turned into d-gaps, then packed into
// fixed-size blocks of BlockSize gaps. Within a block a bit width b is
// chosen so that roughly 90% of gaps (the "regular values") fit in b bits;
// the remainder ("exceptions") keep their slot in the packed array but the
// slot instead stores the forward distance to the next exception, forming a
// linked list, while the exception values themselves are stored
// uncompressed after the packed array. This layout is exactly the one the
// paper's Figure 3 shows, and its sequential exception chain is the reason
// the paper deems PForDelta a poor fit for GPU decompression.
package pfordelta

import (
	"errors"
	"fmt"

	"griffin/internal/bitutil"
)

// BlockSize is the number of d-gaps per compressed block. Both codecs in
// Griffin use 128-element blocks; the paper's crossover analysis (§3.2)
// ties the GPU/CPU switch threshold to this value.
const BlockSize = 128

// regularFraction is the target fraction of in-block values encoded at the
// regular bit width; the paper quotes "a majority of elements (e.g., 90%)".
const regularFraction = 0.9

// Block is one compressed block of up to BlockSize d-gaps.
type Block struct {
	// FirstDocID is the first docID of the block, stored uncompressed so
	// skip pointers can binary-search blocks without decompressing them.
	FirstDocID uint32
	// N is the number of values encoded in the block.
	N int
	// B is the regular-value bit width.
	B int
	// FirstException is the index of the first exception slot, or N if the
	// block has no exceptions.
	FirstException int
	// Packed holds N fields of B bits each: regular d-gaps, or for
	// exception slots the distance-1 to the next exception.
	Packed []uint64
	// Exceptions holds the uncompressed exception d-gaps in slot order.
	Exceptions []uint32
}

// List is a PForDelta-compressed posting list.
type List struct {
	// N is the total number of docIDs.
	N int
	// Blocks are the compressed blocks in docID order.
	Blocks []Block
}

// ErrNotAscending is returned when input docIDs are not strictly ascending.
var ErrNotAscending = errors.New("pfordelta: docIDs not strictly ascending")

// Compress encodes a strictly ascending docID list.
func Compress(docIDs []uint32) (*List, error) {
	l := &List{N: len(docIDs)}
	for i := 1; i < len(docIDs); i++ {
		if docIDs[i] <= docIDs[i-1] {
			return nil, fmt.Errorf("%w: ids[%d]=%d ids[%d]=%d",
				ErrNotAscending, i-1, docIDs[i-1], i, docIDs[i])
		}
	}
	for start := 0; start < len(docIDs); start += BlockSize {
		end := start + BlockSize
		if end > len(docIDs) {
			end = len(docIDs)
		}
		l.Blocks = append(l.Blocks, compressBlock(docIDs[start:end]))
	}
	return l, nil
}

// compressBlock encodes one block. Each block is independently
// decompressible: gaps are taken relative to the block's own first docID
// (which is stored uncompressed in the header), with gaps[0] = 0.
func compressBlock(ids []uint32) Block {
	gaps := make([]uint32, len(ids))
	gaps[0] = 0
	p := ids[0]
	for i := 1; i < len(ids); i++ {
		gaps[i] = ids[i] - p
		p = ids[i]
	}
	return packBlock(ids[0], gaps)
}

// chooseB picks the regular bit width: the smallest b such that at least
// regularFraction of gaps fit in b bits, and such that b can also encode
// the in-block exception-chain distances (at most BlockSize-1, needing 7
// bits at most; smaller b is still legal because chain distances are capped
// by re-linking: a distance that overflows b bits forces the intermediate
// slot to become an exception too — we sidestep that classical complication
// by enforcing b >= bits needed for the max chain distance actually used).
func chooseB(gaps []uint32) int {
	maxBits := 1
	var widths [33]int
	for _, g := range gaps {
		w := bitutil.BitsFor(uint64(g))
		widths[w]++
		if w > maxBits {
			maxBits = w
		}
	}
	need := int(float64(len(gaps))*regularFraction + 0.999999)
	cum := 0
	for b := 1; b <= maxBits; b++ {
		cum += widths[b]
		if cum >= need {
			return b
		}
	}
	return maxBits
}

// packBlock bit-packs the gap array with exception chaining.
func packBlock(firstDocID uint32, gaps []uint32) Block {
	b := chooseB(gaps)
	n := len(gaps)

	for {
		limit := uint32(1)<<uint(b) - 1
		// Identify exceptions (gaps that need more than b bits).
		var excIdx []int
		for i, g := range gaps {
			if g > limit {
				excIdx = append(excIdx, i)
			}
		}
		// Chain distances must fit in b bits: distance to next exception
		// minus 1 must be <= limit. If any hop is too long, widen b and
		// retry (simple, always terminates: at 32 bits nothing is an
		// exception).
		ok := true
		for k := 0; k+1 < len(excIdx); k++ {
			if uint32(excIdx[k+1]-excIdx[k]-1) > limit {
				ok = false
				break
			}
		}
		if !ok {
			b++
			continue
		}

		w := bitutil.NewWriter(n * b)
		blk := Block{
			FirstDocID:     firstDocID,
			N:              n,
			B:              b,
			FirstException: n,
		}
		if len(excIdx) > 0 {
			blk.FirstException = excIdx[0]
		}
		next := 0 // index into excIdx
		for i, g := range gaps {
			if next < len(excIdx) && i == excIdx[next] {
				// Exception slot stores distance-1 to the next exception
				// (or 0 if it is the last one; the decoder stops via count).
				d := uint32(0)
				if next+1 < len(excIdx) {
					d = uint32(excIdx[next+1] - i - 1)
				}
				w.WriteBits(uint64(d), b)
				blk.Exceptions = append(blk.Exceptions, g)
				next++
			} else {
				w.WriteBits(uint64(g), b)
			}
		}
		blk.Packed = w.Words()
		return blk
	}
}

// Decompress decodes the whole list into a fresh slice of docIDs.
func (l *List) Decompress() []uint32 {
	out := make([]uint32, 0, l.N)
	buf := make([]uint32, BlockSize)
	for i := range l.Blocks {
		n := l.Blocks[i].DecompressInto(buf)
		out = append(out, buf[:n]...)
	}
	return out
}

// DecompressInto decodes the block's docIDs into dst, which must have
// capacity for Block.N values, and returns the count. This is the
// sequential CPU path whose cost model anchors Figure 12: unpack b-bit
// slots, walk the exception chain patching values, then prefix-sum the
// gaps.
func (b *Block) DecompressInto(dst []uint32) int {
	r := bitutil.NewReader(b.Packed)
	// Phase 1: unpack raw slots.
	for i := 0; i < b.N; i++ {
		dst[i] = uint32(r.ReadBits(b.B))
	}
	// Phase 2: walk the exception linked list, replacing chain pointers
	// with real gap values. This walk is inherently sequential — the
	// property the paper calls out as hostile to GPUs.
	idx := b.FirstException
	for k := 0; k < len(b.Exceptions); k++ {
		d := int(dst[idx])
		dst[idx] = b.Exceptions[k]
		idx += d + 1
	}
	// Phase 3: prefix sum gaps into docIDs.
	acc := b.FirstDocID
	dst[0] = acc
	for i := 1; i < b.N; i++ {
		acc += dst[i]
		dst[i] = acc
	}
	return b.N
}

// LastDocID returns the final docID of the block, by decompression.
// Intended for verification, not hot paths (skip pointers store bounds).
func (b *Block) LastDocID() uint32 {
	buf := make([]uint32, b.N)
	b.DecompressInto(buf)
	return buf[b.N-1]
}

// CompressedBits returns the total size of the compressed representation
// in bits: packed slots, uncompressed 32-bit exceptions, and the per-block
// header (first docID 32b, count 8b, width 6b, first-exception 8b). Used
// for Table 1's compression-ratio comparison.
func (l *List) CompressedBits() int64 {
	var bits int64
	for i := range l.Blocks {
		b := &l.Blocks[i]
		bits += int64(b.N*b.B) + int64(len(b.Exceptions))*32 + blockHeaderBits
	}
	return bits
}

const blockHeaderBits = 32 + 8 + 6 + 8

// Ratio returns the compression ratio relative to raw 32-bit docIDs.
func (l *List) Ratio() float64 {
	if l.N == 0 {
		return 0
	}
	return float64(int64(l.N)*32) / float64(l.CompressedBits())
}

// NumExceptions returns the total exception count across blocks.
func (l *List) NumExceptions() int {
	n := 0
	for i := range l.Blocks {
		n += len(l.Blocks[i].Exceptions)
	}
	return n
}
