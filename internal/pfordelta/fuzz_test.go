package pfordelta

import (
	"reflect"
	"testing"
)

// FuzzRoundTrip drives the exception machinery with arbitrary gap
// profiles: mixed tiny and huge gaps exercise exception chains, chain
// re-linking (width widening), and block boundaries.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0})
	f.Add([]byte{255, 0, 255, 0}, []byte{20, 21})
	f.Add([]byte{7}, []byte{30})
	f.Fuzz(func(t *testing.T, gapBytes, bigShifts []byte) {
		if len(gapBytes) == 0 || len(gapBytes) > 4096 {
			return
		}
		ids := make([]uint32, len(gapBytes))
		cur := uint32(0)
		for i, g := range gapBytes {
			gap := uint32(g) + 1
			// Sprinkle huge gaps (exceptions) where bigShifts says so.
			if len(bigShifts) > 0 && i%7 == 0 {
				shift := bigShifts[i%len(bigShifts)] % 20
				gap += 1 << shift
			}
			if cur > 1<<31 {
				return // avoid uint32 overflow
			}
			cur += gap
			ids[i] = cur
		}
		l, err := Compress(ids)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		if got := l.Decompress(); !reflect.DeepEqual(got, ids) {
			t.Fatal("round trip mismatch")
		}
	})
}
