package pfordelta

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// genAscending builds a strictly ascending docID list with the given gap
// profile: mostly small gaps with a fraction of large outliers, the shape
// PForDelta's exception machinery exists for.
func genAscending(rng *rand.Rand, n int, smallMax, bigMax uint32, bigFrac float64) []uint32 {
	ids := make([]uint32, n)
	cur := uint32(rng.Intn(100))
	for i := 0; i < n; i++ {
		var gap uint32
		if rng.Float64() < bigFrac {
			gap = 1 + uint32(rng.Intn(int(bigMax)))
		} else {
			gap = 1 + uint32(rng.Intn(int(smallMax)))
		}
		cur += gap
		ids[i] = cur
	}
	return ids
}

func TestRoundTripSmall(t *testing.T) {
	cases := [][]uint32{
		{0},
		{5},
		{0, 1, 2, 3},
		{100, 121, 163, 172, 185, 214, 282, 300, 347}, // the paper's Figure 3 example
		{1, 1 << 30},
	}
	for i, ids := range cases {
		l, err := Compress(ids)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := l.Decompress()
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("case %d: got %v want %v", i, got, ids)
		}
	}
}

func TestRoundTripLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 127, 128, 129, 1000, 4096, 100000} {
		ids := genAscending(rng, n, 30, 1<<20, 0.08)
		l, err := Compress(ids)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := l.Decompress()
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestRoundTripNoExceptions(t *testing.T) {
	// Uniform small gaps: chooseB should cover everything, zero exceptions.
	ids := make([]uint32, 1024)
	for i := range ids {
		ids[i] = uint32(i * 3)
	}
	l, err := Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumExceptions() != 0 {
		t.Fatalf("expected 0 exceptions, got %d", l.NumExceptions())
	}
	if !reflect.DeepEqual(l.Decompress(), ids) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripManyExceptions(t *testing.T) {
	// Alternating tiny/huge gaps: ~50% exceptions stress the chain.
	rng := rand.New(rand.NewSource(8))
	ids := make([]uint32, 2000)
	cur := uint32(0)
	for i := range ids {
		if i%2 == 0 {
			cur += 1
		} else {
			cur += 1 << uint(10+rng.Intn(10))
		}
		ids[i] = cur
	}
	l, err := Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Decompress(), ids) {
		t.Fatal("round trip mismatch")
	}
}

func TestLongExceptionHopsWidenB(t *testing.T) {
	// Two exceptions separated by > 2^b positions at the natural b force
	// packBlock to widen b. Construct: gaps of 1 everywhere except slots 0
	// and 120 which are huge; natural b = 1, hop distance 119 needs 7 bits.
	ids := make([]uint32, 128)
	cur := uint32(0)
	for i := range ids {
		gap := uint32(1)
		if i == 1 || i == 121 {
			gap = 1 << 25
		}
		cur += gap
		ids[i] = cur
	}
	l, err := Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.Decompress(), ids) {
		t.Fatal("round trip mismatch")
	}
	if b := l.Blocks[0].B; b < 7 {
		t.Fatalf("expected widened b >= 7, got %d", b)
	}
}

func TestNotAscending(t *testing.T) {
	for _, ids := range [][]uint32{{3, 3}, {5, 4}, {1, 2, 2}} {
		if _, err := Compress(ids); !errors.Is(err, ErrNotAscending) {
			t.Fatalf("Compress(%v): err = %v, want ErrNotAscending", ids, err)
		}
	}
}

func TestEmptyList(t *testing.T) {
	l, err := Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.N != 0 || len(l.Blocks) != 0 {
		t.Fatalf("empty list: N=%d blocks=%d", l.N, len(l.Blocks))
	}
	if got := l.Decompress(); len(got) != 0 {
		t.Fatalf("decompress empty: %v", got)
	}
}

func TestBlockIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ids := genAscending(rng, 1000, 50, 1<<18, 0.05)
	l, err := Compress(ids)
	if err != nil {
		t.Fatal(err)
	}
	// Decompress blocks out of order; results must stitch together.
	out := make([]uint32, len(ids))
	buf := make([]uint32, BlockSize)
	for i := len(l.Blocks) - 1; i >= 0; i-- {
		n := l.Blocks[i].DecompressInto(buf)
		copy(out[i*BlockSize:], buf[:n])
	}
	if !reflect.DeepEqual(out, ids) {
		t.Fatal("out-of-order block decompression mismatch")
	}
}

func TestFirstDocIDAndLast(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ids := genAscending(rng, 600, 40, 1<<16, 0.1)
	l, _ := Compress(ids)
	for i := range l.Blocks {
		start := i * BlockSize
		if l.Blocks[i].FirstDocID != ids[start] {
			t.Fatalf("block %d FirstDocID = %d, want %d", i, l.Blocks[i].FirstDocID, ids[start])
		}
		end := start + l.Blocks[i].N - 1
		if got := l.Blocks[i].LastDocID(); got != ids[end] {
			t.Fatalf("block %d LastDocID = %d, want %d", i, got, ids[end])
		}
	}
}

func TestCompressionRatioSanity(t *testing.T) {
	// Dense lists (small gaps) must compress well below 32 bits/entry.
	rng := rand.New(rand.NewSource(11))
	ids := genAscending(rng, 50000, 12, 1<<14, 0.02)
	l, _ := Compress(ids)
	if r := l.Ratio(); r < 2 {
		t.Fatalf("ratio = %.2f, expected > 2 for dense list", r)
	}
	bits := float64(l.CompressedBits()) / float64(l.N)
	if bits > 16 {
		t.Fatalf("bits/entry = %.1f, expected < 16", bits)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(gaps []uint16, seed int64) bool {
		if len(gaps) == 0 {
			return true
		}
		ids := make([]uint32, len(gaps))
		cur := uint32(0)
		for i, g := range gaps {
			cur += uint32(g) + 1
			ids[i] = cur
		}
		l, err := Compress(ids)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(l.Decompress(), ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressPreservesSortedness(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ids := genAscending(rng, 10000, 100, 1<<22, 0.1)
	l, _ := Compress(ids)
	out := l.Decompress()
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
		t.Fatal("decompressed list not sorted")
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	ids := genAscending(rng, 1<<17, 30, 1<<20, 0.08)
	b.SetBytes(int64(len(ids) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	ids := genAscending(rng, 1<<17, 30, 1<<20, 0.08)
	l, _ := Compress(ids)
	b.SetBytes(int64(len(ids) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Decompress()
	}
}
