package core

import (
	"reflect"
	"testing"
	"time"

	"griffin/internal/exec"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/sched"
	"griffin/internal/workload"
)

// An explicit Devices: 1 engine must be byte-identical to the default
// (pre-node) configuration: same docs, same full QueryStats — plan
// records, latencies, everything. This is the parity guarantee the
// multi-device refactor makes: a single-device node is not "almost the
// same", it is the same engine.
func TestSingleDeviceNodeParity(t *testing.T) {
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 60, PopularityAlpha: 0.7, Seed: 11,
	})
	for _, mode := range []Mode{GPUOnly, Hybrid, PerQueryHybrid} {
		for _, cached := range []bool{false, true} {
			mk := func(devices int) *Engine {
				e, err := New(c.Index, Config{
					Mode:       mode,
					Device:     gpu.New(hwmodel.DefaultGPU(), 0),
					Devices:    devices,
					CacheLists: cached,
				})
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			base, node := mk(0), mk(1)
			defer base.Close()
			defer node.Close()
			for i, q := range queries {
				want, err := base.Search(q.Terms)
				if err != nil {
					t.Fatal(err)
				}
				got, err := node.Search(q.Terms)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Docs, want.Docs) {
					t.Fatalf("%v cached=%v q%d %v: docs differ", mode, cached, i, q.Terms)
				}
				if !reflect.DeepEqual(got.Stats, want.Stats) {
					t.Fatalf("%v cached=%v q%d %v: stats differ\n got    %+v\n want   %+v",
						mode, cached, i, q.Terms, got.Stats, want.Stats)
				}
			}
			if bs, ns := base.CacheStats(), node.CacheStats(); bs != ns {
				t.Fatalf("%v cached=%v: cache stats %+v != %+v", mode, cached, ns, bs)
			}
		}
	}
}

// A multi-device engine returns the same answers as a single-device one
// (placement moves work, never changes it), stamps each query's device
// ops with the device it was placed on, and actually spreads sequential
// queries' residency so sibling caches serve peer copies.
func TestMultiDeviceEngineCorrectAndPlaced(t *testing.T) {
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 80, PopularityAlpha: 0.7, Seed: 13,
	})
	mk := func(devices int, placement sched.DevicePlacement) *Engine {
		e, err := New(c.Index, Config{
			Mode:       Hybrid,
			Device:     gpu.New(hwmodel.DefaultGPU(), 0),
			Devices:    devices,
			Placement:  placement,
			CacheLists: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	single := mk(1, nil)
	multi := mk(4, &sched.RoundRobinDevices{})
	defer single.Close()
	defer multi.Close()
	if multi.Devices() != 4 {
		t.Fatalf("Devices() = %d, want 4", multi.Devices())
	}

	usedDevices := map[int]bool{}
	for i, q := range queries {
		want, err := single.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		got, err := multi.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Docs, want.Docs) {
			t.Fatalf("q%d %v: multi-device docs differ from single-device", i, q.Terms)
		}
		if got.Stats.Candidates != want.Stats.Candidates {
			t.Fatalf("q%d %v: candidates %d != %d", i, q.Terms, got.Stats.Candidates, want.Stats.Candidates)
		}
		// Every device op of one query carries the same device id (whole-
		// query placement) and it matches a real device ordinal.
		dev := -1
		for _, rec := range got.Stats.Plan {
			if rec.Kind == exec.OpUpload || (rec.Kind == exec.OpIntersect && rec.Device != 0) {
				if dev == -1 {
					dev = rec.Device
				}
				if rec.Device != dev {
					t.Fatalf("q%d: ops on devices %d and %d within one query", i, dev, rec.Device)
				}
			}
		}
		if dev >= 0 {
			if dev >= 4 {
				t.Fatalf("q%d placed on device %d of 4", i, dev)
			}
			usedDevices[dev] = true
		}
	}
	if len(usedDevices) < 2 {
		t.Fatalf("round-robin placement used only devices %v", usedDevices)
	}

	// Striped residency plus repeated hot terms must have produced peer
	// copies — and every peer copy must be priced (the node stats show
	// interconnect transfers, the cache stats count them).
	cs := multi.CacheStats()
	if cs.PeerCopies == 0 {
		t.Fatal("80 popularity-skewed queries over 4 devices produced no peer copies")
	}
	perDev := multi.DeviceCacheStats()
	if len(perDev) != 4 {
		t.Fatalf("DeviceCacheStats len %d", len(perDev))
	}
	var sum CacheStats
	for _, st := range perDev {
		sum.Add(st)
	}
	if sum != cs {
		t.Fatalf("per-device stats %+v do not sum to aggregate %+v", sum, cs)
	}
	if single.CacheStats().PeerCopies != 0 {
		t.Fatal("single-device engine recorded peer copies")
	}
}

// Warmup stripes terms across the node's devices, seeding the residency
// affinity placement routes toward.
func TestWarmupStripesAcrossDevices(t *testing.T) {
	c := testCorpus(t)
	e, err := New(c.Index, Config{
		Mode:       Hybrid,
		Device:     gpu.New(hwmodel.DefaultGPU(), 0),
		Devices:    2,
		CacheLists: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	terms := c.Index.Terms()
	if len(terms) < 4 {
		t.Fatalf("corpus has only %d terms", len(terms))
	}
	loaded, took, err := e.Warmup(terms[:4])
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 {
		t.Fatalf("loaded %d lists, want 4", loaded)
	}
	if took <= 0 {
		t.Fatal("warmup reported zero simulated upload time")
	}
	perDev := e.DeviceCacheStats()
	if perDev[0].Lists != 2 || perDev[1].Lists != 2 {
		t.Fatalf("striping put %d/%d lists, want 2/2", perDev[0].Lists, perDev[1].Lists)
	}

	// Affinity placement now routes a warm term's query to its device: an
	// idle node's only signal is the resident-list saving.
	pl, ok := c.Index.Lookup(terms[1])
	if !ok {
		t.Fatal("warm term missing")
	}
	if got := e.placeDevice([]string{pl.Term}); got != 1 {
		t.Fatalf("query for term warmed on device 1 placed on device %d", got)
	}
}

// Under AdmitAt-style load the affinity default balances: saturating
// arrivals spread across devices rather than all queueing on one.
func TestSearchAtSpreadsLoadAcrossDevices(t *testing.T) {
	c := testCorpus(t)
	e, err := New(c.Index, Config{
		Mode:    Hybrid,
		Device:  gpu.New(hwmodel.DefaultGPU(), 0),
		Devices: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 24, PopularityAlpha: 0.7, Seed: 17,
	})
	// Arrivals far faster than service: without spreading, backlog grows
	// unboundedly on device 0.
	for i, q := range queries {
		if _, err := e.SearchAt(q.Terms, time.Duration(i)*time.Microsecond); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Node().Stats()
	if len(st.Devices) != 2 {
		t.Fatalf("node has %d device snapshots", len(st.Devices))
	}
	if st.Devices[0].Admitted == 0 || st.Devices[1].Admitted == 0 {
		t.Fatalf("admissions %d/%d: one device never used under saturation",
			st.Devices[0].Admitted, st.Devices[1].Admitted)
	}
}
