// Package core is the Griffin engine: the end-to-end conjunctive query
// pipeline of §2.1 — posting-list lookup, SvS-ordered pairwise
// intersections, BM25 scoring, top-k selection — executed under one of
// three placements:
//
//   - CPUOnly: the highly optimized CPU baseline (§2.2), using block-wise
//     merge or skip-pointer binary search per pair;
//   - GPUOnly: Griffin-GPU (§3.1), running decompression (Para-EF) and
//     intersection (MergePath or parallel binary search over skip
//     pointers) on the simulated device;
//   - Hybrid: Griffin proper (§3.2), scheduling each intersection to GPU
//     or CPU by the length-ratio policy and migrating intermediate results
//     from device to host when the query's characteristics shift.
//
// Per-query latency is simulated: CPU operations report work counts priced
// by hwmodel.CPUModel, device operations accumulate on a gpu.Stream; the
// two interleave on a single sequential timeline, matching how the paper's
// prototype executes one query.
package core

import (
	"fmt"
	"time"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/intersect"
	"griffin/internal/kernels"
	"griffin/internal/rank"
	"griffin/internal/sched"
)

// Mode selects the execution placement.
type Mode int

const (
	// CPUOnly runs every stage on the host.
	CPUOnly Mode = iota
	// GPUOnly runs decompression and intersection on the device
	// (Griffin-GPU standalone).
	GPUOnly
	// Hybrid is Griffin: dynamic per-operation scheduling with mid-query
	// migration (the paper's Figure 1(d)).
	Hybrid
	// PerQueryHybrid is the static hybrid baseline of Figure 1(c) (Ding
	// et al., WWW'09): the scheduler places the *whole* query on one
	// processor — decided once from the two shortest lists' length ratio —
	// and never revisits the choice as the query's characteristics change.
	// The paper's §5 argues this is exactly what Griffin improves on.
	PerQueryHybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CPUOnly:
		return "cpu-only"
	case GPUOnly:
		return "gpu-only"
	case PerQueryHybrid:
		return "per-query-hybrid"
	default:
		return "griffin"
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Mode is the placement strategy.
	Mode Mode
	// Policy schedules Hybrid-mode intersections; nil means the paper's
	// RatioPolicy (crossover 128, sticky migration).
	Policy sched.Policy
	// GPUCrossover is GPU-only mode's internal switch between MergePath
	// and skip-pointer binary search (0 = 128; §3.1.2's "configurable
	// parameter").
	GPUCrossover float64
	// CPUSkipThreshold is the CPU-side merge-vs-binary ratio switch
	// (0 = intersect.DefaultSkipThreshold).
	CPUSkipThreshold int
	// TopK is the result count (0 = 10).
	TopK int
	// CPU prices host work; the zero value means hwmodel.DefaultCPU().
	CPU hwmodel.CPUModel
	// Device is the simulated GPU; required unless Mode == CPUOnly.
	Device *gpu.Device
	// BM25 are the scoring parameters; the zero value means defaults.
	BM25 rank.BM25Params
	// CacheLists keeps compressed posting lists resident in device memory
	// (bounded LRU), eliminating repeat PCIe uploads for hot terms — the
	// scalable middle ground between Griffin's upload-per-query prototype
	// and Ao et al.'s cache-everything design the paper's §5 discusses.
	CacheLists bool
	// CacheBytes bounds the device cache (0 = 4 GB, leaving headroom of
	// the K20's 5 GB for working buffers).
	CacheBytes int64
}

// Engine executes queries against one index.
type Engine struct {
	ix     *index.Index
	cfg    Config
	scorer *rank.Scorer
	cache  *listCache
}

// New builds an engine, validating that GPU modes have a device.
func New(ix *index.Index, cfg Config) (*Engine, error) {
	if cfg.Mode != CPUOnly && cfg.Device == nil {
		return nil, fmt.Errorf("core: mode %v requires a device", cfg.Mode)
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.CPU == (hwmodel.CPUModel{}) {
		cfg.CPU = hwmodel.DefaultCPU()
	}
	if cfg.BM25 == (rank.BM25Params{}) {
		cfg.BM25 = rank.DefaultBM25()
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.NewRatioPolicy()
	}
	if cfg.GPUCrossover <= 0 {
		cfg.GPUCrossover = sched.DefaultCrossover
	}
	if cfg.CPUSkipThreshold <= 0 {
		cfg.CPUSkipThreshold = intersect.DefaultSkipThreshold
	}
	e := &Engine{ix: ix, cfg: cfg, scorer: rank.NewScorer(ix, cfg.BM25)}
	if cfg.CacheLists {
		if cfg.CacheBytes <= 0 {
			cfg.CacheBytes = 4 << 30
		}
		e.cfg.CacheBytes = cfg.CacheBytes
		e.cache = newListCache(cfg.CacheBytes)
	}
	return e, nil
}

// Close releases any device memory the engine holds (the list cache).
// Engines without caching need no cleanup.
func (e *Engine) Close() {
	if e.cache != nil {
		e.cache.drop()
	}
}

// CachedLists returns the number of device-resident cached lists.
func (e *Engine) CachedLists() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.len()
}

// Warmup preloads the given terms' compressed posting lists into the
// device cache (no-op without CacheLists), so a service can pay the PCIe
// uploads for its hottest terms before taking traffic. It returns the
// number of lists now resident and the simulated upload time.
func (e *Engine) Warmup(terms []string) (int, time.Duration, error) {
	if e.cache == nil || e.cfg.Device == nil {
		return 0, 0, nil
	}
	s := e.cfg.Device.NewStream()
	loaded := 0
	for _, term := range terms {
		pl, ok := e.ix.Lookup(term)
		if !ok {
			continue
		}
		if _, release, ok := e.cache.get(pl.Term); ok {
			release()
			loaded++
			continue
		}
		comp, err := kernels.UploadEF(s, pl.EF)
		if err != nil {
			return loaded, s.Elapsed(), err
		}
		if release, ok := e.cache.put(pl.Term, comp); ok {
			release()
			loaded++
		} else {
			comp.Free()
		}
	}
	return loaded, s.Elapsed(), nil
}

// Index returns the engine's index.
func (e *Engine) Index() *index.Index { return e.ix }

// Mode returns the engine's placement mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// OpTrace records one intersection's placement and outcome — the
// scheduler visibility the examples and experiments inspect.
type OpTrace struct {
	Stage    string
	Where    sched.Processor
	Ratio    float64
	ShortLen int
	LongLen  int
	OutLen   int
	Took     time.Duration
}

// QueryStats aggregates one query's simulated execution.
type QueryStats struct {
	// Latency is the end-to-end simulated response time.
	Latency time.Duration
	// CPUTime and GPUTime split the latency by processor.
	CPUTime time.Duration
	GPUTime time.Duration
	// Migrated reports whether a Hybrid query moved from GPU to CPU.
	Migrated bool
	// Candidates is the final intersection size entering ranking.
	Candidates int
	// Ops traces each intersection.
	Ops []OpTrace
}

// Result is a completed query.
type Result struct {
	// Docs are the top-k results, descending by score.
	Docs []kernels.ScoredDoc
	// Stats is the simulated execution record.
	Stats QueryStats

	candidates []uint32
}

// Search runs one conjunctive query and returns the top-k scored docs.
// Terms missing from the index make the conjunction empty.
func (e *Engine) Search(terms []string) (*Result, error) {
	lists := make([]*index.PostingList, 0, len(terms))
	for _, t := range terms {
		pl, ok := e.ix.Lookup(t)
		if !ok {
			return &Result{}, nil
		}
		lists = append(lists, pl)
	}
	if len(lists) == 0 {
		return &Result{}, nil
	}

	// SvS ordering: ascending by length (§2.1.2).
	views := make([]index.BlockList, len(lists))
	for i, pl := range lists {
		views[i] = index.EFView{L: pl.EF}
	}
	order := intersect.OrderByLength(views)
	ordered := make([]*index.PostingList, len(order))
	for i, oi := range order {
		ordered[i] = lists[oi]
	}

	var res *Result
	var err error
	switch e.cfg.Mode {
	case CPUOnly:
		res = e.searchCPU(ordered)
	case GPUOnly:
		res, err = e.searchGPU(ordered)
	case PerQueryHybrid:
		res, err = e.searchPerQuery(ordered)
	default:
		res, err = e.searchHybrid(ordered)
	}
	if err != nil {
		return nil, err
	}

	e.rankOnCPU(res, lists)
	res.Stats.Latency = res.Stats.CPUTime + res.Stats.GPUTime
	return res, nil
}

// trace appends an op record.
func (r *Result) trace(where sched.Processor, ratio float64, shortLen, longLen, outLen int, took time.Duration) {
	r.Stats.Ops = append(r.Stats.Ops, OpTrace{
		Stage:    fmt.Sprintf("intersect#%d", len(r.Stats.Ops)),
		Where:    where,
		Ratio:    ratio,
		ShortLen: shortLen,
		LongLen:  longLen,
		OutLen:   outLen,
		Took:     took,
	})
}

// cpuPair runs one CPU intersection and books its time.
func (e *Engine) cpuPair(res *Result, short, long index.BlockList) []uint32 {
	step := intersect.Pair(short, long, e.cfg.CPUSkipThreshold)
	took := e.cfg.CPU.Time(step.Work)
	res.Stats.CPUTime += took
	res.trace(sched.CPU, sched.Ratio(min(short.Len(), long.Len()), max(short.Len(), long.Len())),
		min(short.Len(), long.Len()), max(short.Len(), long.Len()), len(step.IDs), took)
	return step.IDs
}

// searchCPU is the CPU-only baseline path: SvS with per-pair merge/skip
// choice, everything decoded on the host.
func (e *Engine) searchCPU(ordered []*index.PostingList) *Result {
	res := &Result{}
	if len(ordered) == 1 {
		step := intersect.SvS([]index.BlockList{index.EFView{L: ordered[0].EF}}, e.cfg.CPUSkipThreshold)
		took := e.cfg.CPU.Time(step.Work)
		res.Stats.CPUTime += took
		res.trace(sched.CPU, 1, ordered[0].N, ordered[0].N, len(step.IDs), took)
		res.candidates = step.IDs
		res.Stats.Candidates = len(step.IDs)
		return res
	}
	cur := e.cpuPair(res, index.EFView{L: ordered[0].EF}, index.EFView{L: ordered[1].EF})
	for _, pl := range ordered[2:] {
		if len(cur) == 0 {
			break
		}
		cur = e.cpuPair(res, index.RawView{IDs: cur}, index.EFView{L: pl.EF})
	}
	res.candidates = cur
	res.Stats.Candidates = len(cur)
	return res
}

// deviceState tracks GPU-resident data during a query.
type deviceState struct {
	stream   *gpu.Stream
	bufs     []*gpu.Buffer // everything to free at query end
	releases []func()      // cache references to drop at query end
	last     time.Duration // last observed stream clock, for GPU time deltas
}

func (ds *deviceState) track(b *gpu.Buffer) *gpu.Buffer {
	ds.bufs = append(ds.bufs, b)
	return b
}

func (ds *deviceState) freeAll() {
	for _, b := range ds.bufs {
		b.Free()
	}
	ds.bufs = nil
	for _, rel := range ds.releases {
		rel()
	}
	ds.releases = nil
}

// delta returns the stream time consumed since the previous call.
func (ds *deviceState) delta() time.Duration {
	now := ds.stream.Elapsed()
	d := now - ds.last
	ds.last = now
	return d
}

// uploadCompressed moves a posting list's compressed form onto the device,
// consulting the resident cache first. Cached buffers stay alive across
// queries and are not tracked for end-of-query freeing.
func (e *Engine) uploadCompressed(ds *deviceState, pl *index.PostingList) (*gpu.Buffer, error) {
	if e.cache != nil {
		if buf, release, ok := e.cache.get(pl.Term); ok {
			ds.releases = append(ds.releases, release)
			return buf, nil // already resident: no PCIe transfer
		}
	}
	comp, err := kernels.UploadEF(ds.stream, pl.EF)
	if err != nil {
		return nil, err
	}
	if e.cache != nil {
		if release, ok := e.cache.put(pl.Term, comp); ok {
			ds.releases = append(ds.releases, release)
			return comp, nil
		}
	}
	return ds.track(comp), nil
}

// uploadDecompressed uploads a posting list compressed and decompresses it
// on the device with Para-EF, returning the decompressed buffer.
func (e *Engine) uploadDecompressed(ds *deviceState, pl *index.PostingList) (*gpu.Buffer, error) {
	comp, err := e.uploadCompressed(ds, pl)
	if err != nil {
		return nil, err
	}
	dec, _, err := kernels.ParaEFDecompress(ds.stream, comp)
	if err != nil {
		return nil, err
	}
	return ds.track(dec), nil
}

// searchGPU is Griffin-GPU standalone: every intersection on the device.
// Per §3.1.2 it still adapts internally: MergePath below the crossover
// ratio, parallel binary search over skip pointers above it.
func (e *Engine) searchGPU(ordered []*index.PostingList) (*Result, error) {
	res := &Result{}
	ds := &deviceState{stream: e.cfg.Device.NewStream()}
	defer ds.freeAll()

	if len(ordered) == 1 {
		dec, err := e.uploadDecompressed(ds, ordered[0])
		if err != nil {
			return nil, err
		}
		ids := ds.stream.D2H(dec, int64(ordered[0].N)*4).([]uint32)
		took := ds.delta()
		res.Stats.GPUTime += took
		res.trace(sched.GPU, 1, ordered[0].N, ordered[0].N, len(ids), took)
		res.candidates = ids
		res.Stats.Candidates = len(ids)
		return res, nil
	}

	// First pair.
	a, b := ordered[0], ordered[1]
	cur, err := e.gpuPair(res, ds, nil, a, b)
	if err != nil {
		return nil, err
	}
	// Fold in the remaining lists.
	for _, pl := range ordered[2:] {
		if cur.Count == 0 {
			break
		}
		cur, err = e.gpuPair(res, ds, cur, nil, pl)
		if err != nil {
			return nil, err
		}
	}

	ids := []uint32{}
	if cur.Count > 0 {
		ids = ds.stream.D2H(cur.Out, int64(cur.Count)*4).([]uint32)[:cur.Count]
		res.Stats.GPUTime += ds.delta()
	}
	res.candidates = ids
	res.Stats.Candidates = len(ids)
	return res, nil
}

// gpuPair intersects on the device. Exactly one of (prev) or (a) is set as
// the short operand source: prev is an earlier device-resident result; a
// is a posting list to decompress. b is the longer posting list.
func (e *Engine) gpuPair(res *Result, ds *deviceState, prev *kernels.IntersectResult, a, b *index.PostingList) (*kernels.IntersectResult, error) {
	var shortBuf *gpu.Buffer
	var shortLen int
	if prev != nil {
		// Trim the buffer view to the match count for downstream kernels.
		shortBuf = prev.Out
		shortBuf.Data = prev.Matches()
		shortLen = prev.Count
	} else {
		dec, err := e.uploadDecompressed(ds, a)
		if err != nil {
			return nil, err
		}
		shortBuf = dec
		shortLen = a.N
	}

	ratio := sched.Ratio(shortLen, b.N)
	var out *kernels.IntersectResult
	var err error
	if ratio < e.cfg.GPUCrossover {
		longDec, derr := e.uploadDecompressed(ds, b)
		if derr != nil {
			return nil, derr
		}
		out, err = kernels.IntersectMergePath(ds.stream, shortBuf, longDec)
	} else {
		comp, derr := kernels.UploadEF(ds.stream, b.EF)
		if derr != nil {
			return nil, derr
		}
		ds.track(comp)
		out, err = kernels.IntersectBinarySkips(ds.stream, shortBuf, comp)
	}
	if err != nil {
		return nil, err
	}
	ds.track(out.Out)
	took := ds.delta()
	res.Stats.GPUTime += took
	res.trace(sched.GPU, ratio, shortLen, b.N, out.Count, took)
	return out, nil
}

// searchPerQuery is the Figure 1(c) baseline: one placement decision for
// the entire query, made from the two shortest lists' ratio exactly like
// Griffin's first decision, but never reconsidered — if the early stages
// fit the GPU, the late skewed intersections are stuck there too.
func (e *Engine) searchPerQuery(ordered []*index.PostingList) (*Result, error) {
	if len(ordered) == 1 {
		return e.searchCPU(ordered), nil
	}
	policy := e.cfg.Policy.Fresh()
	if d := policy.Decide(ordered[0].N, ordered[1].N); d.Where == sched.GPU {
		return e.searchGPU(ordered)
	}
	return e.searchCPU(ordered), nil
}

// searchHybrid is Griffin: before each intersection the policy places the
// operation; the intermediate result migrates D2H (billed at PCIe cost)
// the first time execution moves to the CPU.
func (e *Engine) searchHybrid(ordered []*index.PostingList) (*Result, error) {
	res := &Result{}
	policy := e.cfg.Policy.Fresh()
	ds := &deviceState{stream: e.cfg.Device.NewStream()}
	defer ds.freeAll()

	if len(ordered) == 1 {
		// Single-term query: no intersection to schedule; decode on CPU
		// (tiny fixed work, no transfer).
		return e.searchCPU(ordered), nil
	}

	var hostIDs []uint32                // intermediate when on host
	var devRes *kernels.IntersectResult // intermediate when on device
	onDevice := false

	for i := 1; i < len(ordered); i++ {
		long := ordered[i]
		var shortLen int
		if i == 1 {
			shortLen = ordered[0].N
		} else if onDevice {
			shortLen = devRes.Count
		} else {
			shortLen = len(hostIDs)
		}
		if shortLen == 0 {
			break
		}

		d := policy.Decide(shortLen, long.N)
		if d.Where == sched.GPU {
			var err error
			if i == 1 {
				devRes, err = e.gpuPair(res, ds, nil, ordered[0], long)
			} else if onDevice {
				devRes, err = e.gpuPair(res, ds, devRes, nil, long)
			} else {
				// Intermediate on host (can happen with non-sticky
				// policies): upload it raw.
				buf, herr := ds.stream.H2D(hostIDs, int64(len(hostIDs))*4)
				if herr != nil {
					return nil, herr
				}
				ds.track(buf)
				prev := &kernels.IntersectResult{Out: buf, Count: len(hostIDs)}
				devRes, err = e.gpuPair(res, ds, prev, nil, long)
			}
			if err != nil {
				return nil, err
			}
			onDevice = true
			continue
		}

		// CPU placement: migrate the intermediate off the device first.
		if onDevice {
			hostIDs = ds.stream.D2H(devRes.Out, int64(devRes.Count)*4).([]uint32)[:devRes.Count]
			res.Stats.GPUTime += ds.delta()
			res.Stats.Migrated = true
			onDevice = false
		}
		var short index.BlockList
		if i == 1 {
			short = index.EFView{L: ordered[0].EF}
		} else {
			short = index.RawView{IDs: hostIDs}
		}
		hostIDs = e.cpuPair(res, short, index.EFView{L: long.EF})
	}

	if onDevice {
		// Query finished on the device: bring the final result home.
		hostIDs = []uint32{}
		if devRes.Count > 0 {
			hostIDs = ds.stream.D2H(devRes.Out, int64(devRes.Count)*4).([]uint32)[:devRes.Count]
		}
		res.Stats.GPUTime += ds.delta()
	}
	res.candidates = hostIDs
	res.Stats.Candidates = len(hostIDs)
	return res, nil
}

// rankOnCPU scores the surviving candidates with BM25 and selects the
// top-k with the CPU partial sort (the Figure-7-justified choice).
func (e *Engine) rankOnCPU(res *Result, lists []*index.PostingList) {
	if len(res.candidates) == 0 {
		res.Docs = nil
		return
	}
	scored, work := e.scorer.ScoreCandidates(lists, res.candidates)
	top, tkWork := rank.TopKCPU(scored, e.cfg.TopK)
	work.Add(tkWork)
	res.Stats.CPUTime += e.cfg.CPU.Time(work)
	res.Docs = top
}
