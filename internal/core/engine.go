// Package core is the Griffin engine: the end-to-end conjunctive query
// pipeline of §2.1 — posting-list lookup, SvS-ordered pairwise
// intersections, BM25 scoring, top-k selection — executed under one of
// three placements:
//
//   - CPUOnly: the highly optimized CPU baseline (§2.2), using block-wise
//     merge or skip-pointer binary search per pair;
//   - GPUOnly: Griffin-GPU (§3.1), running decompression (Para-EF) and
//     intersection (MergePath or parallel binary search over skip
//     pointers) on the simulated device;
//   - Hybrid: Griffin proper (§3.2), scheduling each intersection to GPU
//     or CPU by the length-ratio policy and migrating intermediate results
//     from device to host when the query's characteristics shift.
//
// Per-query latency is simulated: CPU operations report work counts priced
// by hwmodel.CPUModel, device operations accumulate on a gpu.Stream; the
// two interleave on a single sequential timeline, matching how the paper's
// prototype executes one query.
package core

import (
	"context"
	"fmt"
	"time"

	"griffin/internal/exec"
	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/intersect"
	"griffin/internal/kernels"
	"griffin/internal/rank"
	"griffin/internal/sched"
)

// Mode selects the execution placement.
type Mode int

const (
	// CPUOnly runs every stage on the host.
	CPUOnly Mode = iota
	// GPUOnly runs decompression and intersection on the device
	// (Griffin-GPU standalone).
	GPUOnly
	// Hybrid is Griffin: dynamic per-operation scheduling with mid-query
	// migration (the paper's Figure 1(d)).
	Hybrid
	// PerQueryHybrid is the static hybrid baseline of Figure 1(c) (Ding
	// et al., WWW'09): the scheduler places the *whole* query on one
	// processor — decided once from the two shortest lists' length ratio —
	// and never revisits the choice as the query's characteristics change.
	// The paper's §5 argues this is exactly what Griffin improves on.
	PerQueryHybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CPUOnly:
		return "cpu-only"
	case GPUOnly:
		return "gpu-only"
	case PerQueryHybrid:
		return "per-query-hybrid"
	default:
		return "griffin"
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Mode is the placement strategy.
	Mode Mode
	// Policy schedules Hybrid-mode intersections; nil means the paper's
	// RatioPolicy (crossover 128, sticky migration).
	Policy sched.Policy
	// GPUCrossover is GPU-only mode's internal switch between MergePath
	// and skip-pointer binary search (0 = 128; §3.1.2's "configurable
	// parameter").
	GPUCrossover float64
	// CPUSkipThreshold is the CPU-side merge-vs-binary ratio switch
	// (0 = intersect.DefaultSkipThreshold).
	CPUSkipThreshold int
	// TopK is the result count (0 = 10).
	TopK int
	// CPU prices host work; the zero value means hwmodel.DefaultCPU().
	CPU hwmodel.CPUModel
	// Device is the simulated GPU; required unless Mode == CPUOnly. On a
	// multi-device node (Devices > 1) it is device 0 and the template the
	// siblings are cloned from.
	Device *gpu.Device
	// Devices is the node's simulated GPU count (0 or 1 = a single
	// device, byte-identical to the pre-node engine). Devices 1..N-1 are
	// clones of Device with private memory and independent timelines;
	// each query is placed on one of them by Placement before admission.
	Devices int
	// Placement picks the device for each query when Devices > 1; nil
	// means sched.AffinityDevices (backlog minus resident-list savings).
	// Ignored on single-device nodes, where every query runs on device 0
	// without consulting any policy.
	Placement sched.DevicePlacement
	// Runtime shares the device among engines; nil means the engine
	// builds its own runtime over Device. All queries of an engine —
	// Search, SearchBatch, warmup — go through the node's runtimes, so
	// concurrent queries contend for the modeled devices and are charged
	// queueing delay (Stats.GPUWait) when they are busy. A caller-built
	// Runtime becomes the node's only device (Devices is ignored).
	Runtime *gpu.DeviceRuntime
	// Node adopts an existing multi-device runtime wholesale: the new
	// engine shares the node's per-device timelines, submit hooks, and
	// batching stage instead of building its own. This is how a live
	// index swap (background merge publishing a re-encoded segment)
	// replaces the engine without resetting device state: in-flight
	// queries on the old engine and new queries on its successor contend
	// for the same modeled devices. Device, Devices, Streams, and
	// Placement's node-construction role are ignored when set; takes
	// precedence over Runtime.
	Node *gpu.NodeRuntime
	// Streams bounds each device runtime's simulated compute lanes when
	// the engine builds its own node (0 = 1, the K20's single compute
	// engine). Ignored when Runtime is set.
	Streams int
	// SpillBacklog enables load-aware admission: when > 0, the engine
	// wraps its scheduling policy so intersections spill to the CPU plan
	// whenever the device runtime's compute backlog exceeds this
	// threshold — loadsim.RunAdaptive's behaviour promoted into the real
	// engine (§3.2's load-balancing hook). Zero disables spilling.
	SpillBacklog time.Duration
	// BatchWindow enables the device runtimes' cross-query batching stage:
	// compatible device ops (same engine class and batch key) from
	// concurrently admitted queries whose submissions fall within this
	// window of each other coalesce into one batched launch, paying the
	// fixed launch/DMA/alloc costs once plus a per-member marginal cost
	// (hwmodel.GPUModel.BatchMemberOverhead). Per-query results are
	// byte-identical to unbatched execution — batching moves simulated
	// time, never bytes. Zero disables batching (the pre-batching
	// submission path, timelines bit for bit); negative is a config error.
	BatchWindow time.Duration
	// BatchMax closes a batch when it reaches this many member ops
	// (flush-on-size); 0 means gpu.DefaultBatchMax. Meaningful only with
	// BatchWindow > 0; negative is a config error.
	BatchMax int
	// BM25 are the scoring parameters; the zero value means defaults.
	BM25 rank.BM25Params
	// CacheLists keeps compressed posting lists resident in device memory
	// (bounded LRU), eliminating repeat PCIe uploads for hot terms — the
	// scalable middle ground between Griffin's upload-per-query prototype
	// and Ao et al.'s cache-everything design the paper's §5 discusses.
	CacheLists bool
	// CacheBytes bounds the device cache (0 = 4 GB, leaving headroom of
	// the K20's 5 GB for working buffers).
	CacheBytes int64
	// NoCPUFallback disables the engine's degradation path: by default a
	// query whose device plan dies on an injected device fault
	// (fault.DeviceFault — not ordinary resource errors like OOM) is
	// transparently re-run on the CPU-only plan, returning correct
	// results with the wasted device time charged to its stats. The
	// paper's CPU/GPU symmetry is what makes this sound: both processors
	// are full-fidelity executors of the same query work.
	NoCPUFallback bool
}

// Engine executes queries against one index.
type Engine struct {
	ix     *index.Index
	cfg    Config
	scorer *rank.Scorer
	// caches holds one device-resident list cache per node device (nil
	// without CacheLists); node is the engine's multi-device runtime (nil
	// for CPU-only engines) and placement its per-query device chooser.
	caches    []*listCache
	node      *gpu.NodeRuntime
	placement sched.DevicePlacement
}

// New builds an engine, validating that GPU modes have a device.
func New(ix *index.Index, cfg Config) (*Engine, error) {
	if cfg.Node != nil && cfg.Device == nil {
		// Adopting a node: device 0's simulated GPU is the engine's
		// device, exactly as NewNode would have arranged it.
		cfg.Device = cfg.Node.Runtime(0).Device()
	}
	if cfg.Mode != CPUOnly && cfg.Device == nil {
		return nil, fmt.Errorf("core: mode %v requires a device", cfg.Mode)
	}
	if cfg.BatchWindow < 0 {
		return nil, fmt.Errorf("core: negative BatchWindow %v", cfg.BatchWindow)
	}
	if cfg.BatchMax < 0 {
		return nil, fmt.Errorf("core: negative BatchMax %d", cfg.BatchMax)
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	if cfg.CPU == (hwmodel.CPUModel{}) {
		cfg.CPU = hwmodel.DefaultCPU()
	}
	if cfg.BM25 == (rank.BM25Params{}) {
		cfg.BM25 = rank.DefaultBM25()
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.NewRatioPolicy()
	}
	if cfg.GPUCrossover <= 0 {
		cfg.GPUCrossover = sched.DefaultCrossover
	}
	if cfg.CPUSkipThreshold <= 0 {
		cfg.CPUSkipThreshold = intersect.DefaultSkipThreshold
	}
	e := &Engine{ix: ix, cfg: cfg, scorer: rank.NewScorer(ix, cfg.BM25)}
	if cfg.Device != nil {
		adopted := cfg.Node != nil
		switch {
		case adopted:
			e.node = cfg.Node
		case cfg.Runtime != nil:
			e.node = gpu.WrapNode(cfg.Runtime)
		default:
			e.node = gpu.NewNode(cfg.Device, cfg.Devices, cfg.Streams)
		}
		e.placement = cfg.Placement
		if e.placement == nil {
			e.placement = sched.AffinityDevices{}
		}
		// An adopted node keeps whatever batching stage it already runs;
		// re-enabling would reset its telemetry mid-serve.
		if cfg.BatchWindow > 0 && !adopted {
			e.node.EnableBatching(gpu.BatchConfig{Window: cfg.BatchWindow, Max: cfg.BatchMax})
		}
	}
	if cfg.CacheLists {
		if cfg.CacheBytes <= 0 {
			cfg.CacheBytes = 4 << 30
		}
		e.cfg.CacheBytes = cfg.CacheBytes
		devices := 1
		if e.node != nil {
			devices = e.node.Devices()
		}
		e.caches = make([]*listCache, devices)
		for i := range e.caches {
			e.caches[i] = newListCache(cfg.CacheBytes)
		}
	}
	return e, nil
}

// Close releases any device memory the engine holds (the list caches).
// Engines without caching need no cleanup.
func (e *Engine) Close() {
	for _, c := range e.caches {
		c.drop()
	}
}

// CachedLists returns the number of device-resident cached lists, summed
// across the node's devices.
func (e *Engine) CachedLists() int {
	n := 0
	for _, c := range e.caches {
		n += c.len()
	}
	return n
}

// CacheStats returns the list caches' telemetry counters aggregated
// across the node's devices (zero value for engines without CacheLists).
func (e *Engine) CacheStats() CacheStats {
	var st CacheStats
	for _, c := range e.caches {
		st.Add(c.stats())
	}
	return st
}

// DeviceCacheStats returns per-device cache telemetry in device order
// (nil without CacheLists) — the /statz view that shows how residency and
// peer copies distribute across a node's GPUs.
func (e *Engine) DeviceCacheStats() []CacheStats {
	if e.caches == nil {
		return nil
	}
	out := make([]CacheStats, len(e.caches))
	for i, c := range e.caches {
		out[i] = c.stats()
	}
	return out
}

// Warmup preloads the given terms' compressed posting lists into the
// device caches (no-op without CacheLists), so a service can pay the
// PCIe uploads for its hottest terms before taking traffic. On a
// multi-device node the terms are striped round-robin across the
// devices — term i warms device i mod N — seeding the residency the
// affinity placement then routes queries toward. It returns the number
// of lists now resident and the simulated upload time (the slowest
// device's, since the devices' copy engines upload concurrently).
// Warmup is admitted into the shared device runtimes like any query, so
// warming a live engine contends with (and delays) in-flight traffic on
// the copy engines, exactly as real PCIe preloading would.
func (e *Engine) Warmup(terms []string) (int, time.Duration, error) {
	if e.caches == nil || e.node == nil {
		return 0, 0, nil
	}
	devices := e.node.Devices()
	handles := make([]*gpu.QueryStream, devices)
	handles[0] = e.node.AdmitOn(0) // sibling handles are admitted on first use
	defer func() {
		for _, h := range handles {
			if h != nil {
				h.Release()
			}
		}
	}()
	elapsed := func() time.Duration {
		var max time.Duration
		for _, h := range handles {
			if h != nil && h.Stream().Elapsed() > max {
				max = h.Stream().Elapsed()
			}
		}
		return max
	}
	loaded := 0
	for i, term := range terms {
		d := i % devices
		pl, ok := e.ix.Lookup(term)
		if !ok {
			continue
		}
		if _, release, ok := e.caches[d].get(pl.Term); ok {
			release()
			loaded++
			continue
		}
		if handles[d] == nil {
			handles[d] = e.node.AdmitOn(d)
		}
		var comp *gpu.Buffer
		err := handles[d].Submit(gpu.CopyEngine, func(s *gpu.Stream) error {
			c, err := kernels.UploadEF(s, pl.EF)
			comp = c
			return err
		})
		if err != nil {
			return loaded, elapsed(), err
		}
		if release, ok := e.caches[d].put(pl.Term, comp); ok {
			release()
			loaded++
		} else {
			comp.Free()
		}
	}
	return loaded, elapsed(), nil
}

// Index returns the engine's index.
func (e *Engine) Index() *index.Index { return e.ix }

// Mode returns the engine's placement mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// OpTrace records one intersection's placement and outcome — the
// scheduler visibility the examples and experiments inspect. It is the
// exec layer's trace type re-exported for engine callers.
type OpTrace = exec.OpTrace

// QueryStats aggregates one query's simulated execution (the exec
// layer's record, including the full physical-plan trace in Plan).
type QueryStats = exec.QueryStats

// PlanRecord is one executed operator of a query's physical plan.
type PlanRecord = exec.OpRecord

// Result is a completed query.
type Result struct {
	// Docs are the top-k results, descending by score. Non-nil whenever
	// the query executed (including empty-conjunction queries).
	Docs []kernels.ScoredDoc
	// Stats is the simulated execution record.
	Stats QueryStats
}

// Search runs one conjunctive query and returns the top-k scored docs.
// Terms missing from the index make the conjunction empty: the result is
// well-formed (non-nil empty Docs, fetch ops traced, latency set) rather
// than a zero value.
//
// Execution is plan-based: the engine's Mode selects a plan builder, and
// the exec layer's single executor walks the resulting operator pipeline
// (fetch → upload/decompress → intersect → migrate → score → top-k) on
// one shared simulated timeline. Device work goes through the engine's
// shared DeviceRuntime: a query running alone reproduces the paper's
// per-query numbers exactly, while queries overlapping in wall clock
// contend for the modeled device and pay queueing delay (Stats.GPUWait).
func (e *Engine) Search(terms []string) (*Result, error) {
	return e.SearchContext(nil, terms)
}

// SearchContext is Search with a cancellation context: ctx (when
// non-nil) is checked between plan operators, so a caller that no longer
// needs the answer — a cluster query whose hedge already won, a closed
// HTTP request — aborts the remaining work with ctx's error.
func (e *Engine) SearchContext(ctx context.Context, terms []string) (*Result, error) {
	return e.SearchOverlayContext(ctx, terms, nil)
}

// SearchOverlayContext is SearchContext with a live-ingestion overlay:
// the query executes against this engine's main segment plus the pinned
// delta view, and the overlay's scorer evaluates the snapshot's
// collection statistics. A nil overlay (or one with an empty view and
// nil scorer) degenerates to the frozen-corpus path byte for byte.
func (e *Engine) SearchOverlayContext(ctx context.Context, terms []string, ov *exec.Overlay) (*Result, error) {
	var h *gpu.QueryStream
	if e.node != nil {
		h = e.node.AdmitOn(e.placeDevice(terms))
		defer h.Release()
	}
	return e.search(ctx, terms, h, ov)
}

// SearchAt runs one query arriving at an explicit simulated time on the
// device runtime's global timeline — the load-study entry point. A
// driver generating (e.g. Poisson) arrivals calls SearchAt in arrival
// order; backlog left on the device by earlier arrivals delays this
// query even though the driver executes queries one at a time, so the
// returned latency is the arrival-to-completion sojourn time.
func (e *Engine) SearchAt(terms []string, arrival time.Duration) (*Result, error) {
	return e.SearchAtContext(nil, terms, arrival)
}

// SearchAtContext is SearchAt with a cancellation context (see
// SearchContext).
func (e *Engine) SearchAtContext(ctx context.Context, terms []string, arrival time.Duration) (*Result, error) {
	return e.SearchOverlayAtContext(ctx, terms, arrival, nil)
}

// SearchOverlayAtContext is SearchAtContext with a live-ingestion
// overlay (see SearchOverlayContext).
func (e *Engine) SearchOverlayAtContext(ctx context.Context, terms []string, arrival time.Duration, ov *exec.Overlay) (*Result, error) {
	var h *gpu.QueryStream
	if e.node != nil {
		h = e.node.AdmitAtOn(e.placeDeviceAt(terms, arrival), arrival)
		defer h.Release()
	}
	return e.search(ctx, terms, h, ov)
}

// placeDevice chooses the device for one query. Single-device nodes skip
// the policy entirely — every query lands on device 0, which keeps the
// devices=1 engine byte-identical to the pre-node one. At Devices > 1
// the placement policy sees each device's compute backlog plus, when the
// engine caches lists, the upload time each device's resident lists
// would save this query (the affinity signal).
func (e *Engine) placeDevice(terms []string) int {
	if e.node.Devices() == 1 {
		return 0
	}
	return e.place(terms, e.node.Backlogs(), e.batchSavings())
}

// placeDeviceAt is placeDevice for explicit-arrival admissions: the
// backlog each device shows is relative to the arrival point on the
// global timeline, so discrete-event load studies see queue skew even
// though their driver runs queries one at a time in wall clock.
func (e *Engine) placeDeviceAt(terms []string, arrival time.Duration) int {
	if e.node.Devices() == 1 {
		return 0
	}
	return e.place(terms, e.node.BacklogsAt(arrival), e.batchSavingsAt(arrival))
}

func (e *Engine) place(terms []string, backlog, batchSaving []time.Duration) int {
	info := sched.NodeInfo{Backlog: backlog, BatchSaving: batchSaving}
	if e.caches != nil {
		info.Saving = e.affinitySavings(terms)
	}
	return e.placement.Place(info)
}

// batchSavings reads the per-device batch-affinity placement signal (nil
// when the batching stage is disabled, so placement math is untouched).
func (e *Engine) batchSavings() []time.Duration {
	if e.cfg.BatchWindow <= 0 {
		return nil
	}
	return e.node.BatchSavings()
}

func (e *Engine) batchSavingsAt(arrival time.Duration) []time.Duration {
	if e.cfg.BatchWindow <= 0 {
		return nil
	}
	return e.node.BatchSavingsAt(arrival)
}

// affinitySavings estimates, per device, the transfer time the query's
// terms would not pay there because their compressed lists are already
// cache-resident. The probe reads residency without touching LRU order
// or hit/miss counters; only the chosen device's cache sees real gets.
func (e *Engine) affinitySavings(terms []string) []time.Duration {
	model := e.node.Model()
	out := make([]time.Duration, e.node.Devices())
	for _, t := range terms {
		pl, ok := e.ix.Lookup(t)
		if !ok {
			continue
		}
		bytes := pl.EF.CompressedBytes()
		for d, c := range e.caches {
			if c.contains(pl.Term) {
				out[d] += model.TransferTime(bytes)
			}
		}
	}
	return out
}

func (e *Engine) search(cancel context.Context, terms []string, h *gpu.QueryStream, ov *exec.Overlay) (*Result, error) {
	return e.searchOpts(cancel, terms, h, ov, SearchOptions{})
}

// searchOpts is search parameterized by per-query overload options: a
// top-k override and a forced CPU-only plan (brownout degradation). The
// zero SearchOptions reproduces search exactly.
func (e *Engine) searchOpts(cancel context.Context, terms []string, h *gpu.QueryStream, ov *exec.Overlay, opts SearchOptions) (*Result, error) {
	fetches := make([]exec.Fetch, len(terms))
	for i, t := range terms {
		fetches[i] = exec.Fetch{Term: t}
		if pl, ok := e.ix.Lookup(t); ok {
			fetches[i].List = pl
		}
	}
	device := e.cfg.Device
	if e.node != nil && h != nil {
		// The plan executes on the device the query was placed on: its
		// buffers live in (and its capacity checks charge) that device's
		// memory. Device 0 is cfg.Device itself, so single-device nodes
		// are unchanged.
		device = e.node.Runtime(h.Device()).Device()
	}
	topK := e.cfg.TopK
	if opts.TopK > 0 {
		topK = opts.TopK
	}
	ctx := &exec.Context{
		Ctx:           cancel,
		CPU:           e.cfg.CPU,
		Device:        device,
		Handle:        h,
		Lists:         e.listProvider(),
		Scorer:        e.scorer,
		SkipThreshold: e.cfg.CPUSkipThreshold,
		TopK:          topK,
	}
	if ov != nil {
		ctx.Delta = ov.Delta
		if ov.Scorer != nil {
			ctx.Scorer = ov.Scorer
		}
	}
	builder := e.planBuilder(e.queryPolicy(h))
	if opts.ForceCPU {
		// Brownout degradation: the hybrid symmetry that backs fault
		// fallback also backs load shedding — the CPU plan computes the
		// same answer without touching the contended device timeline.
		builder = func(ordered []*index.PostingList) exec.Builder {
			return exec.NewCPUBuilder(ordered)
		}
	}
	out, err := exec.Run(ctx, fetches, builder)
	if err != nil {
		if fault.IsDeviceFault(err) && !e.cfg.NoCPUFallback && e.cfg.Mode != CPUOnly && !opts.ForceCPU {
			return e.fallbackCPU(cancel, fetches, h, ov, err, topK)
		}
		return nil, err
	}
	return &Result{Docs: out.Docs, Stats: out.Stats}, nil
}

// fallbackCPU re-runs a query whose device plan died on an injected
// fault, using the CPU-only plan — the paper's hybrid symmetry made
// load-bearing: the CPU executes the exact same query work, so the
// fallback's results match the CPU-only golden bit for bit. The
// simulated device time the aborted plan had accumulated (service time
// plus queueing delay) is charged to the fallback's stats as
// FaultWasted/GPUTime: the failed attempt happened on the timeline even
// though its results were discarded.
func (e *Engine) fallbackCPU(cancel context.Context, fetches []exec.Fetch, h *gpu.QueryStream, ov *exec.Overlay, cause error, topK int) (*Result, error) {
	var wasted time.Duration
	if h != nil {
		wasted = h.Stream().Elapsed()
	}
	ctx := &exec.Context{
		Ctx:           cancel,
		CPU:           e.cfg.CPU,
		Scorer:        e.scorer,
		SkipThreshold: e.cfg.CPUSkipThreshold,
		TopK:          topK,
	}
	if ov != nil {
		// The fallback re-plans on the CPU but keeps the query's pinned
		// snapshot: same delta view, same statistics, same results.
		ctx.Delta = ov.Delta
		if ov.Scorer != nil {
			ctx.Scorer = ov.Scorer
		}
	}
	out, err := exec.Run(ctx, fetches, func(ordered []*index.PostingList) exec.Builder {
		return exec.NewCPUBuilder(ordered)
	})
	if err != nil {
		return nil, err
	}
	out.Stats.FallbackCPU = true
	out.Stats.Fault = cause.Error()
	out.Stats.FaultWasted = wasted
	out.Stats.GPUTime += wasted
	out.Stats.Latency = out.Stats.CPUTime + out.Stats.GPUTime
	if h != nil {
		out.Stats.GPUWait = h.Waited()
	}
	return &Result{Docs: out.Docs, Stats: out.Stats}, nil
}

// queryPolicy returns the scheduling policy for one query: the
// configured policy, wrapped with the load-aware spill when the engine
// has SpillBacklog set — the wrapper reads this query's view of the
// device backlog (its runtime handle) before every placement decision.
func (e *Engine) queryPolicy(h *gpu.QueryStream) sched.Policy {
	p := e.cfg.Policy
	if e.cfg.SpillBacklog > 0 && h != nil {
		p = &sched.LoadAwarePolicy{Inner: p, Backlog: h, Threshold: e.cfg.SpillBacklog}
	}
	return p
}

// planBuilder maps the engine's Mode to its plan builder — the only
// thing the four execution modes differ in.
func (e *Engine) planBuilder(policy sched.Policy) func(ordered []*index.PostingList) exec.Builder {
	return func(ordered []*index.PostingList) exec.Builder {
		switch e.cfg.Mode {
		case CPUOnly:
			return exec.NewCPUBuilder(ordered)
		case GPUOnly:
			return exec.NewGPUBuilder(ordered, e.cfg.GPUCrossover)
		case PerQueryHybrid:
			return exec.NewPerQueryBuilder(ordered, policy, e.cfg.GPUCrossover)
		default:
			return exec.NewHybridBuilder(ordered, policy, e.cfg.GPUCrossover)
		}
	}
}

// Runtime returns device 0's runtime (nil for CPU-only engines) — the
// single-device telemetry surface, preserved for callers that predate
// multi-device nodes; Node is the full per-device view.
func (e *Engine) Runtime() *gpu.DeviceRuntime {
	if e.node == nil {
		return nil
	}
	return e.node.Runtime(0)
}

// Node returns the engine's multi-device runtime (nil for CPU-only
// engines) — per-device backlog, utilization, and admission telemetry.
func (e *Engine) Node() *gpu.NodeRuntime { return e.node }

// Batching returns the engine's cross-query batching configuration and
// whether the stage is enabled (always false for CPU-only engines, whose
// plans place no device work).
func (e *Engine) Batching() (gpu.BatchConfig, bool) {
	if e.node == nil || e.cfg.BatchWindow <= 0 {
		return gpu.BatchConfig{}, false
	}
	max := e.cfg.BatchMax
	if max <= 0 {
		max = gpu.DefaultBatchMax
	}
	return gpu.BatchConfig{Window: e.cfg.BatchWindow, Max: max}, true
}

// BatchStats aggregates the node's cross-query batching telemetry across
// devices (zero value when the stage is disabled).
func (e *Engine) BatchStats() gpu.BatchStats {
	if e.node == nil {
		return gpu.BatchStats{}
	}
	return e.node.BatchStats()
}

// DeviceBatchStats returns per-device batching telemetry in device order
// (nil for CPU-only engines).
func (e *Engine) DeviceBatchStats() []gpu.BatchStats {
	if e.node == nil {
		return nil
	}
	return e.node.DeviceBatchStats()
}

// Devices returns the node's device count (1 for CPU-only engines, whose
// plans place no device work).
func (e *Engine) Devices() int {
	if e.node == nil {
		return 1
	}
	return e.node.Devices()
}

// listProvider exposes the engine's resident-list caches to cacheable
// Upload operators; without caching, uploads go straight over PCIe.
func (e *Engine) listProvider() exec.ListProvider {
	if e.caches == nil {
		return nil
	}
	return cacheProvider{caches: e.caches, model: e.node.Model()}
}

// cacheProvider adapts the per-device listCaches to the executor's
// ListProvider: local cache hits skip the transfer entirely; local
// misses whose list is resident on a sibling device take the priced
// choice between a peer copy over the inter-device interconnect and a
// host PCIe re-upload (the cheaper wins — a decision, not a free move);
// successful puts hand ownership to the cache (the executor only drops
// the reference), and full-cache misses leave the buffer executor-owned.
type cacheProvider struct {
	caches []*listCache
	model  *hwmodel.GPUModel
}

func (p cacheProvider) DeviceCompressed(s *gpu.Stream, dev int, pl *index.PostingList) (exec.DeviceList, error) {
	local := p.caches[dev]
	if buf, release, ok := local.get(pl.Term); ok {
		return exec.DeviceList{Buf: buf, Release: release}, nil // already resident: no transfer
	}
	if comp, ok, err := p.peerCopy(s, dev, pl.Term); ok || err != nil {
		if err != nil {
			return exec.DeviceList{}, err
		}
		local.notePeerCopy()
		if release, ok := local.put(pl.Term, comp); ok {
			return exec.DeviceList{Buf: comp, Release: release, Peer: true}, nil
		}
		return exec.DeviceList{Buf: comp, Peer: true}, nil
	}
	comp, err := kernels.UploadEF(s, pl.EF)
	if err != nil {
		return exec.DeviceList{}, err
	}
	if release, ok := local.put(pl.Term, comp); ok {
		return exec.DeviceList{Buf: comp, Release: release, Uploaded: true}, nil
	}
	return exec.DeviceList{Buf: comp, Uploaded: true}, nil
}

// peerCopy scans the sibling devices' caches for term and, when found
// and the interconnect beats the host path for that size, copies the
// compressed list device-to-device onto s. ok is false when the list is
// resident nowhere (or re-uploading is cheaper), sending the caller to
// the host PCIe path.
func (p cacheProvider) peerCopy(s *gpu.Stream, dev int, term string) (*gpu.Buffer, bool, error) {
	for d, c := range p.caches {
		if d == dev || !c.contains(term) {
			continue
		}
		src, release, ok := c.get(term)
		if !ok {
			continue // evicted between the probe and the get
		}
		if p.model.PeerTransferTime(src.Bytes) >= p.model.TransferTime(src.Bytes) {
			release()
			return nil, false, nil
		}
		comp, err := s.PeerIn(src.Data, src.Bytes)
		release()
		if err != nil {
			return nil, false, err
		}
		return comp, true, nil
	}
	return nil, false, nil
}
