package core

import (
	"reflect"
	"testing"

	"griffin/internal/fault"
	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

// TestDeviceFaultFallsBackToCPU is the tentpole's correctness claim: a
// query whose device plan dies on an injected fault returns results
// identical to the CPU-only golden — the fallback re-plan, not an error
// — with the wasted device time visible in its stats.
func TestDeviceFaultFallsBackToCPU(t *testing.T) {
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 30, PopularityAlpha: 0.6, Seed: 9,
	})

	cpuE, err := New(c.Index, Config{Mode: CPUOnly})
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{GPUOnly, Hybrid, PerQueryHybrid} {
		dev := gpu.New(hwmodel.DefaultGPU(), 0)
		rt := gpu.NewRuntime(dev, 1)
		eng, err := New(c.Index, Config{Mode: mode, Device: dev, Runtime: rt})
		if err != nil {
			t.Fatal(err)
		}
		// Every device submission fails: every GPU-touching query must
		// fall back, and all results must match the CPU golden.
		in := fault.NewInjector(fault.Plan{Seed: 1, Rules: []fault.Rule{
			{Kind: fault.KernelLaunch, Rate: 1},
			{Kind: fault.TransferError, Rate: 1},
		}})
		rt.SetSubmitHook(in.DeviceHook("s0r0"))

		fellBack := 0
		for qi, q := range queries {
			want, err := cpuE.Search(q.Terms)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Search(q.Terms)
			if err != nil {
				t.Fatalf("mode %v query %d: fault surfaced as error instead of fallback: %v", mode, qi, err)
			}
			if !reflect.DeepEqual(docIDsOf(want), docIDsOf(got)) {
				t.Fatalf("mode %v query %d: fallback results differ from CPU golden: %v vs %v",
					mode, qi, docIDsOf(want), docIDsOf(got))
			}
			if got.Stats.FallbackCPU {
				fellBack++
				if got.Stats.Fault == "" {
					t.Fatalf("mode %v query %d: fallback stats carry no fault description", mode, qi)
				}
				if got.Stats.Latency != got.Stats.CPUTime+got.Stats.GPUTime {
					t.Fatalf("mode %v query %d: latency invariant broken: %v != %v + %v",
						mode, qi, got.Stats.Latency, got.Stats.CPUTime, got.Stats.GPUTime)
				}
				if got.Stats.GPUTime < got.Stats.FaultWasted {
					t.Fatalf("mode %v query %d: wasted time %v not carried into GPUTime %v",
						mode, qi, got.Stats.FaultWasted, got.Stats.GPUTime)
				}
			}
		}
		if mode == GPUOnly && fellBack == 0 {
			t.Fatalf("mode %v: no query fell back under a rate-1 fault plan", mode)
		}
	}
}

// TestNoCPUFallbackSurfacesError checks the opt-out: with the
// degradation path disabled, an injected device fault propagates as the
// error it is.
func TestNoCPUFallbackSurfacesError(t *testing.T) {
	c := testCorpus(t)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	rt := gpu.NewRuntime(dev, 1)
	eng, err := New(c.Index, Config{Mode: GPUOnly, Device: dev, Runtime: rt, NoCPUFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.TransferError, Rate: 1},
	}})
	rt.SetSubmitHook(in.DeviceHook("s0r0"))
	q := workload.GenerateQueryLog(c, workload.QuerySpec{NumQueries: 1, PopularityAlpha: 0.6, Seed: 9})[0]
	if _, err := eng.Search(q.Terms); !fault.IsDeviceFault(err) {
		t.Fatalf("NoCPUFallback query error = %v, want injected DeviceFault", err)
	}
}

// TestFallbackChargesWastedDeviceTime pins the accounting: the aborted
// plan's accumulated stream time shows up as FaultWasted on the
// fallback stats. A mid-plan fault (first kernel, after the uploads
// succeeded) guarantees nonzero waste.
func TestFallbackChargesWastedDeviceTime(t *testing.T) {
	c := testCorpus(t)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	rt := gpu.NewRuntime(dev, 1)
	eng, err := New(c.Index, Config{Mode: GPUOnly, Device: dev, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	// Uploads (copy engine) run clean; the first compute submission dies.
	in := fault.NewInjector(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Kind: fault.KernelLaunch, Rate: 1},
	}})
	rt.SetSubmitHook(in.DeviceHook("s0r0"))
	q := workload.GenerateQueryLog(c, workload.QuerySpec{NumQueries: 1, PopularityAlpha: 0.6, Seed: 9})[0]
	r, err := eng.Search(q.Terms)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stats.FallbackCPU {
		t.Fatalf("query did not fall back")
	}
	if r.Stats.FaultWasted <= 0 {
		t.Fatalf("FaultWasted = %v, want > 0 (uploads ran before the kernel died)", r.Stats.FaultWasted)
	}
	if r.Stats.GPUTime != r.Stats.FaultWasted {
		t.Fatalf("GPUTime %v != FaultWasted %v on a CPU re-run", r.Stats.GPUTime, r.Stats.FaultWasted)
	}
	if r.Stats.Latency <= r.Stats.CPUTime {
		t.Fatalf("latency %v does not include the wasted device time (CPU %v)", r.Stats.Latency, r.Stats.CPUTime)
	}
}
