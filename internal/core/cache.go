package core

import (
	"container/list"
	"sync"

	"griffin/internal/gpu"
)

// listCache is an LRU cache of device-resident compressed posting lists,
// keyed by term.
//
// Ao et al. [PVLDB'11] cache *all* inverted lists in device memory, which
// the paper's §5 criticizes as "not practical or scalable ... given the
// rapidly growing volume of data". The middle ground implemented here —
// bounded LRU caching of hot compressed lists — eliminates the PCIe
// upload for frequently queried terms while respecting the K20's 5 GB;
// the cache ablation quantifies the trade-off.
//
// The cache is safe for concurrent use (the engine allows concurrent
// Search calls) and reference-counts entries: a buffer evicted while an
// in-flight query still reads it is only freed when the last reference is
// released.
type listCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	// hits/misses/evictions are lifetime counters (served by /statz):
	// a hit is a get that skipped the PCIe upload, a miss a get that will
	// pay it, an eviction one entry displaced by capacity pressure.
	// peerCopies counts misses that were filled over the inter-device
	// interconnect from a sibling device's cache (multi-GPU nodes only).
	hits       int64
	misses     int64
	evictions  int64
	peerCopies int64
}

type cacheEntry struct {
	term string
	buf  *gpu.Buffer
	refs int
	dead bool // evicted while referenced; free on last release
}

// newListCache returns a cache bounded to capacity bytes of device memory.
func newListCache(capacity int64) *listCache {
	return &listCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// get returns the cached device buffer for term plus a release function
// the caller must invoke when done with the buffer (end of query).
func (c *listCache) get(term string) (*gpu.Buffer, func(), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[term]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	e.refs++
	return e.buf, func() { c.release(e) }, true
}

// contains reports whether term is resident without perturbing the LRU
// order or the hit/miss counters — the placement layer's residency probe
// (affinity savings are estimated per candidate device before a query is
// placed; only the chosen device's cache then takes the real get).
func (c *listCache) contains(term string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[term]
	return ok
}

// notePeerCopy counts one miss filled over the peer interconnect.
func (c *listCache) notePeerCopy() {
	c.mu.Lock()
	c.peerCopies++
	c.mu.Unlock()
}

// release drops one reference; a dead (evicted) entry frees its device
// memory when the last reference goes.
func (c *listCache) release(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.dead && e.refs == 0 {
		e.buf.Free()
	}
}

// put inserts a device buffer under term, evicting least-recently-used
// entries until the new entry fits. It returns a release function and
// true on success; the caller must invoke the release when its own use of
// the buffer ends. Entries larger than the whole capacity, or terms
// already present (a concurrent query raced the upload), are rejected —
// the caller keeps ownership of its buffer and frees it per-query.
func (c *listCache) put(term string, buf *gpu.Buffer) (func(), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if buf.Bytes > c.capacity {
		return nil, false
	}
	if _, ok := c.entries[term]; ok {
		return nil, false
	}
	for c.used+buf.Bytes > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.used -= victim.buf.Bytes
		delete(c.entries, victim.term)
		c.order.Remove(back)
		c.evictions++
		if victim.refs > 0 {
			victim.dead = true // freed on last release
		} else {
			victim.buf.Free()
		}
	}
	e := &cacheEntry{term: term, buf: buf, refs: 1}
	c.entries[term] = c.order.PushFront(e)
	c.used += buf.Bytes
	return func() { c.release(e) }, true
}

// drop removes every entry, freeing the unreferenced ones immediately and
// marking in-use ones dead (used when shutting an engine down).
func (c *listCache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.entries {
		e := el.Value.(*cacheEntry)
		if e.refs > 0 {
			e.dead = true
		} else {
			e.buf.Free()
		}
	}
	c.entries = make(map[string]*list.Element)
	c.order.Init()
	c.used = 0
}

// len returns the entry count.
func (c *listCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// stats returns a snapshot of the cache counters.
func (c *listCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Lists:      len(c.entries),
		Bytes:      c.used,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		PeerCopies: c.peerCopies,
	}
}

// CacheStats is a telemetry snapshot of the device-resident list cache.
type CacheStats struct {
	// Lists and Bytes are the current residency.
	Lists int
	Bytes int64
	// Hits, Misses, and Evictions are lifetime counters: hits skipped a
	// PCIe upload, misses paid one, evictions displaced an entry under
	// capacity pressure.
	Hits      int64
	Misses    int64
	Evictions int64
	// PeerCopies counts misses filled from a sibling device's cache over
	// the inter-device interconnect instead of the host PCIe path (always
	// zero on single-device nodes).
	PeerCopies int64
}

// Add accumulates another snapshot (per-device caches aggregate into one
// engine-level view; cluster telemetry aggregates across replicas).
func (s *CacheStats) Add(o CacheStats) {
	s.Lists += o.Lists
	s.Bytes += o.Bytes
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.PeerCopies += o.PeerCopies
}
