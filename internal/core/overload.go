package core

import (
	"context"
	"time"

	"griffin/internal/exec"
	"griffin/internal/gpu"
)

// SearchOptions carries a query's overload-control parameters into the
// engine. The zero value reproduces the un-optioned search paths byte
// for byte — no budget check, configured top-k, configured plan mode.
type SearchOptions struct {
	// Budget is the query's remaining deadline budget on the modeled
	// clock. When positive, device admission rejects the query
	// (gpu.ErrBudget) if the placed device's backlog plus the estimated
	// transfer cost already exceeds it — shed at the door instead of
	// queued to die. Zero means no budget.
	Budget time.Duration
	// ForceCPU degrades the query to a CPU-only plan (brownout): no
	// device admission, no timeline contention, same answer.
	ForceCPU bool
	// TopK overrides the configured result count when positive (brownout
	// serves interactive queries at reduced top-k under pressure).
	TopK int
}

// SearchOptsContext is SearchOverlayContext with overload options. A
// zero opts delegates to the legacy path unchanged.
func (e *Engine) SearchOptsContext(ctx context.Context, terms []string, ov *exec.Overlay, opts SearchOptions) (*Result, error) {
	if opts == (SearchOptions{}) {
		return e.SearchOverlayContext(ctx, terms, ov)
	}
	var h *gpu.QueryStream
	if e.node != nil && !opts.ForceCPU {
		var err error
		if h, err = e.node.AdmitOnBudget(e.placeDevice(terms), opts.Budget, e.estimateDeviceCost(terms)); err != nil {
			return nil, err
		}
		defer h.Release()
	}
	return e.searchOpts(ctx, terms, h, ov, opts)
}

// SearchOptsAtContext is SearchOverlayAtContext with overload options
// (explicit arrival on the global timeline). A zero opts delegates to
// the legacy path unchanged; a budget rejection leaves the device
// timeline untouched, so shed arrivals are invisible to later queries.
func (e *Engine) SearchOptsAtContext(ctx context.Context, terms []string, arrival time.Duration, ov *exec.Overlay, opts SearchOptions) (*Result, error) {
	if opts == (SearchOptions{}) {
		return e.SearchOverlayAtContext(ctx, terms, arrival, ov)
	}
	var h *gpu.QueryStream
	if e.node != nil && !opts.ForceCPU {
		var err error
		if h, err = e.node.AdmitAtOnBudget(e.placeDeviceAt(terms, arrival), arrival, opts.Budget, e.estimateDeviceCost(terms)); err != nil {
			return nil, err
		}
		defer h.Release()
	}
	return e.searchOpts(ctx, terms, h, ov, opts)
}

// estimateDeviceCost is the admission-time estimate of a query's device
// work: the transfer time of each term's compressed list, the same
// hwmodel quantity the affinity placement signal prices. It is a cheap
// lower bound — intersection and scoring come on top — which is the
// right bias for admission: an op rejected on the lower bound alone
// could never have met its deadline.
func (e *Engine) estimateDeviceCost(terms []string) time.Duration {
	if e.node == nil {
		return 0
	}
	model := e.node.Model()
	var est time.Duration
	for _, t := range terms {
		if pl, ok := e.ix.Lookup(t); ok {
			est += model.TransferTime(pl.EF.CompressedBytes())
		}
	}
	return est
}
