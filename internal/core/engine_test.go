package core

import (
	"math/rand"
	"reflect"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/sched"
	"griffin/internal/workload"
)

// testCorpus builds a small synthetic corpus with enough spread that
// queries exercise both low- and high-ratio intersections.
func testCorpus(t testing.TB) *workload.Corpus {
	t.Helper()
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    300_000,
		NumTerms:   60,
		MaxListLen: 80_000,
		MinListLen: 200,
		Alpha:      1.0,
		Codec:      index.CodecEF,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newEngines(t testing.TB, c *workload.Corpus) (cpu, gpuE, hyb *Engine) {
	t.Helper()
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	var err error
	cpu, err = New(c.Index, Config{Mode: CPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	gpuE, err = New(c.Index, Config{Mode: GPUOnly, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err = New(c.Index, Config{Mode: Hybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	return cpu, gpuE, hyb
}

func docIDsOf(r *Result) []uint32 {
	out := make([]uint32, len(r.Docs))
	for i, d := range r.Docs {
		out[i] = d.DocID
	}
	return out
}

func TestModesAgreeOnResults(t *testing.T) {
	c := testCorpus(t)
	cpuE, gpuE, hybE := newEngines(t, c)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 40, PopularityAlpha: 0.6, Seed: 5,
	})
	for qi, q := range queries {
		rc, err := cpuE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := gpuE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := hybE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Stats.Candidates != rg.Stats.Candidates || rc.Stats.Candidates != rh.Stats.Candidates {
			t.Fatalf("query %d %v: candidates cpu=%d gpu=%d hybrid=%d",
				qi, q.Terms, rc.Stats.Candidates, rg.Stats.Candidates, rh.Stats.Candidates)
		}
		if !reflect.DeepEqual(docIDsOf(rc), docIDsOf(rg)) {
			t.Fatalf("query %d: cpu and gpu top-k differ: %v vs %v", qi, docIDsOf(rc), docIDsOf(rg))
		}
		if !reflect.DeepEqual(docIDsOf(rc), docIDsOf(rh)) {
			t.Fatalf("query %d: cpu and hybrid top-k differ: %v vs %v", qi, docIDsOf(rc), docIDsOf(rh))
		}
	}
}

func TestSearchResultsAreCorrect(t *testing.T) {
	// Hand-built index with a known conjunction.
	b := index.NewBuilder(index.CodecEF)
	_ = b.AddPostings("x", []uint32{1, 5, 9, 12, 30}, nil)
	_ = b.AddPostings("y", []uint32{5, 9, 11, 30, 31}, nil)
	_ = b.AddPostings("z", []uint32{2, 5, 30}, nil)
	for _, d := range []uint32{1, 2, 5, 9, 11, 12, 30, 31} {
		b.SetDocLen(d, 10)
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(ix, Config{Mode: CPUOnly, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	got := docIDsOf(res)
	want := map[uint32]bool{5: true, 30: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("conjunction = %v, want {5,30}", got)
	}
	if res.Stats.Candidates != 2 {
		t.Fatalf("candidates = %d", res.Stats.Candidates)
	}
}

func TestMissingTermEmptyResult(t *testing.T) {
	c := testCorpus(t)
	cpuE, _, hybE := newEngines(t, c)
	for _, e := range []*Engine{cpuE, hybE} {
		res, err := e.Search([]string{c.Terms[0], "no-such-term"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Docs) != 0 || res.Stats.Candidates != 0 {
			t.Fatal("missing term must empty the conjunction")
		}
	}
}

func TestEmptyQuery(t *testing.T) {
	c := testCorpus(t)
	cpuE, _, _ := newEngines(t, c)
	res, err := cpuE.Search(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 0 {
		t.Fatal("empty query must return nothing")
	}
}

func TestSingleTermQuery(t *testing.T) {
	c := testCorpus(t)
	cpuE, gpuE, hybE := newEngines(t, c)
	term := c.Terms[len(c.Terms)-1] // rarest
	for _, e := range []*Engine{cpuE, gpuE, hybE} {
		res, err := e.Search([]string{term})
		if err != nil {
			t.Fatal(err)
		}
		pl, _ := c.Index.Lookup(term)
		if res.Stats.Candidates != pl.N {
			t.Fatalf("%v: candidates = %d, want %d", e.Mode(), res.Stats.Candidates, pl.N)
		}
		if len(res.Docs) == 0 || len(res.Docs) > 10 {
			t.Fatalf("%v: got %d docs", e.Mode(), len(res.Docs))
		}
	}
}

func TestTopKOrdering(t *testing.T) {
	c := testCorpus(t)
	cpuE, _, _ := newEngines(t, c)
	res, err := cpuE.Search([]string{c.Terms[0], c.Terms[1]})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Docs); i++ {
		if res.Docs[i].Score > res.Docs[i-1].Score {
			t.Fatal("top-k not in descending score order")
		}
	}
}

func TestGPUModeRequiresDevice(t *testing.T) {
	c := testCorpus(t)
	if _, err := New(c.Index, Config{Mode: GPUOnly}); err == nil {
		t.Fatal("GPUOnly without device must fail")
	}
	if _, err := New(c.Index, Config{Mode: Hybrid}); err == nil {
		t.Fatal("Hybrid without device must fail")
	}
}

func TestHybridMigration(t *testing.T) {
	// Craft a query whose first intersection is comparable (GPU) and whose
	// follow-up list is enormously longer (CPU): the query must migrate.
	b := index.NewBuilder(index.CodecEF)
	rng := rand.New(rand.NewSource(9))
	shortA := workload.GenList(rng, 5_000, 3_000_000)
	shortB := workload.GenList(rng, 6_000, 3_000_000)
	huge := workload.GenList(rng, 2_000_000, 3_000_000)
	_ = b.AddPostings("a", shortA, nil)
	_ = b.AddPostings("b", shortB, nil)
	_ = b.AddPostings("huge", huge, nil)
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, err := New(ix, Config{Mode: Hybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search([]string{"a", "b", "huge"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Ops) != 2 {
		t.Fatalf("expected 2 intersections, got %d", len(res.Stats.Ops))
	}
	if res.Stats.Ops[0].Where != sched.GPU {
		t.Fatalf("first op on %v, want GPU (ratio %.1f)", res.Stats.Ops[0].Where, res.Stats.Ops[0].Ratio)
	}
	if res.Stats.Ops[1].Where != sched.CPU {
		t.Fatalf("second op on %v, want CPU (ratio %.1f)", res.Stats.Ops[1].Where, res.Stats.Ops[1].Ratio)
	}
	if !res.Stats.Migrated {
		t.Fatal("Migrated flag not set")
	}
	if res.Stats.GPUTime == 0 || res.Stats.CPUTime == 0 {
		t.Fatalf("expected time on both processors: %+v", res.Stats)
	}
}

func TestHybridAllCPUWhenFirstRatioHigh(t *testing.T) {
	// First pair already above the crossover: the whole query runs on the
	// CPU (the paper's "scheduler first decides" rule).
	b := index.NewBuilder(index.CodecEF)
	rng := rand.New(rand.NewSource(10))
	tiny := workload.GenList(rng, 100, 3_000_000)
	huge := workload.GenList(rng, 100*200, 3_000_000)
	_ = b.AddPostings("tiny", tiny, nil)
	_ = b.AddPostings("huge", huge, nil)
	ix, _ := b.Build()
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, _ := New(ix, Config{Mode: Hybrid, Device: dev})
	res, err := e.Search([]string{"tiny", "huge"})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Stats.Ops {
		if op.Where != sched.CPU {
			t.Fatalf("op %s on %v, want CPU", op.Stage, op.Where)
		}
	}
	if res.Stats.GPUTime != 0 {
		t.Fatalf("GPU time %v on an all-CPU query", res.Stats.GPUTime)
	}
}

func TestStatsLatencyIsSumOfParts(t *testing.T) {
	c := testCorpus(t)
	_, _, hybE := newEngines(t, c)
	res, err := hybE.Search([]string{c.Terms[0], c.Terms[3], c.Terms[10]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Latency != res.Stats.CPUTime+res.Stats.GPUTime {
		t.Fatalf("latency %v != cpu %v + gpu %v", res.Stats.Latency, res.Stats.CPUTime, res.Stats.GPUTime)
	}
	if res.Stats.Latency == 0 {
		t.Fatal("zero simulated latency")
	}
}

func TestDeviceMemoryReleasedAfterQueries(t *testing.T) {
	c := testCorpus(t)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, err := New(c.Index, Config{Mode: GPUOnly, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{NumQueries: 10, PopularityAlpha: 0.5, Seed: 11})
	for _, q := range queries {
		if _, err := e.Search(q.Terms); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Allocated(); got != 0 {
		t.Fatalf("device leaked %d bytes after queries", got)
	}
}

func TestGriffinNotSlowerThanBothBaselines(t *testing.T) {
	// The Figure 14 shape on aggregate: Griffin's mean simulated latency
	// over a query log must not exceed either baseline's (it picks the
	// better processor per op, paying only small transfer costs).
	//
	// This effect needs paper-scale lists: with tiny lists the GPU's fixed
	// overheads dominate everywhere and the CPU wins every op (the <2x
	// region of Figure 12), so the corpus here uses 20K-1M element lists
	// like the paper's (Figure 10: most lists between 1K and 1M).
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    4_000_000,
		NumTerms:   40,
		MaxListLen: 1_000_000,
		MinListLen: 20_000,
		Alpha:      0.8,
		Codec:      index.CodecEF,
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpuE, gpuE, hybE := newEngines(t, c)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{NumQueries: 25, PopularityAlpha: 0.6, Seed: 12})

	var cpuTot, gpuTot, hybTot float64
	for _, q := range queries {
		rc, err := cpuE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := gpuE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := hybE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		cpuTot += rc.Stats.Latency.Seconds()
		gpuTot += rg.Stats.Latency.Seconds()
		hybTot += rh.Stats.Latency.Seconds()
	}
	if hybTot > cpuTot*1.05 {
		t.Fatalf("griffin (%.4fs) slower than cpu-only (%.4fs)", hybTot, cpuTot)
	}
	if hybTot > gpuTot*1.05 {
		t.Fatalf("griffin (%.4fs) slower than gpu-only (%.4fs)", hybTot, gpuTot)
	}
}

func TestSearchDeterministic(t *testing.T) {
	// The whole pipeline is deterministic: repeating a query yields
	// identical results AND identical simulated latency, at any host
	// parallelism — the property that makes recorded experiment numbers
	// reproducible.
	c := testCorpus(t)
	_, gpuE, hybE := newEngines(t, c)
	q := []string{c.Terms[1], c.Terms[4], c.Terms[9]}
	for _, e := range []*Engine{gpuE, hybE} {
		r1, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(docIDsOf(r1), docIDsOf(r2)) {
			t.Fatalf("%v: results differ across runs", e.Mode())
		}
		if r1.Stats.Latency != r2.Stats.Latency {
			t.Fatalf("%v: simulated latency differs: %v vs %v",
				e.Mode(), r1.Stats.Latency, r2.Stats.Latency)
		}
	}
}

func BenchmarkSearchCPUOnly(b *testing.B) {
	c := testCorpus(b)
	e, _ := New(c.Index, Config{Mode: CPUOnly})
	q := []string{c.Terms[2], c.Terms[5], c.Terms[20]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchHybrid(b *testing.B) {
	c := testCorpus(b)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, _ := New(c.Index, Config{Mode: Hybrid, Device: dev})
	q := []string{c.Terms[2], c.Terms[5], c.Terms[20]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}
