package core

import (
	"sync"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

// Stress the concurrent-search path that shares the most mutable state:
// one device, one engine per mode with the list cache enabled, 8
// goroutines hammering SearchBatch so cache get/put/evict, the device
// allocator, and per-query streams all interleave. Run under -race this
// is the synchronization check for the whole upload path; the cache is
// deliberately small so eviction (including evict-while-referenced) is
// exercised, not just hits.
func TestSearchBatchRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 64, PopularityAlpha: 0.9, Seed: 11,
	})
	qs := make([][]string, len(queries))
	for i, q := range queries {
		qs[i] = q.Terms
	}

	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	for _, m := range []Mode{GPUOnly, Hybrid, PerQueryHybrid} {
		e, err := New(c.Index, Config{
			Mode:       m,
			Device:     dev,
			CacheLists: true,
			// Small enough that hot lists evict each other under load.
			CacheBytes: 512 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, br := range e.SearchBatch(qs, 4) {
					if br.Err != nil {
						t.Errorf("%v: query %v: %v", m, br.Terms, br.Err)
						return
					}
					if br.Result == nil || br.Result.Docs == nil {
						t.Errorf("%v: query %v: malformed result", m, br.Terms)
						return
					}
				}
			}()
		}
		wg.Wait()
		e.Close()
	}
	if got := dev.Allocated(); got != 0 {
		t.Fatalf("device memory leaked: %d bytes still allocated", got)
	}
}
