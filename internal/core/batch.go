package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchResult pairs one query of a batch with its outcome.
type BatchResult struct {
	// Terms is the query as submitted.
	Terms []string
	// Result is the query outcome (nil iff Err != nil).
	Result *Result
	// Err is the per-query failure, if any.
	Err error
}

// SearchBatch executes many queries concurrently across a bounded worker
// pool and returns results in submission order. Engines are safe for
// concurrent Search calls (the device allocator, counters, and list cache
// are synchronized; each query gets its own stream), so batching is pure
// throughput: wall-clock improves while each result's simulated latency
// remains the per-query number the paper reports.
//
// workers <= 0 selects GOMAXPROCS.
func (e *Engine) SearchBatch(queries [][]string, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]BatchResult, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	if workers > len(queries) {
		workers = len(queries)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				res, err := e.Search(queries[i])
				out[i] = BatchResult{Terms: queries[i], Result: res, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
