package core

import (
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
)

// Unknown terms make a conjunctive query empty; the engine must still
// return a well-formed result — non-nil Docs, fetch ops in the plan
// trace, and a latency covering the dictionary probes — in every mode,
// rather than a zero Result.
func TestSearchEmptyAndUnknownTerms(t *testing.T) {
	c := testCorpus(t)
	known := c.Index.Terms()[0]
	known2 := c.Index.Terms()[1]

	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	engines := map[string]*Engine{}
	for _, m := range []Mode{CPUOnly, GPUOnly, Hybrid, PerQueryHybrid} {
		cfg := Config{Mode: m}
		if m != CPUOnly {
			cfg.Device = dev
		}
		e, err := New(c.Index, cfg)
		if err != nil {
			t.Fatal(err)
		}
		engines[m.String()] = e
	}

	cases := []struct {
		name      string
		terms     []string
		wantDocs  bool // expect a non-empty top-k
		wantFetch int  // fetch ops expected in the plan trace
	}{
		{name: "empty query", terms: nil, wantFetch: 0},
		{name: "one unknown term", terms: []string{known, "no-such-term"}, wantFetch: 2},
		{name: "unknown first", terms: []string{"no-such-term", known, known2}, wantFetch: 3},
		{name: "all unknown", terms: []string{"missing-a", "missing-b"}, wantFetch: 2},
		{name: "known terms", terms: []string{known, known2}, wantDocs: true, wantFetch: 2},
	}

	for name, e := range engines {
		for _, tc := range cases {
			res, err := e.Search(tc.terms)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tc.name, err)
			}
			if res.Docs == nil {
				t.Errorf("%s/%s: Docs is nil, want non-nil slice", name, tc.name)
			}
			if tc.wantDocs && len(res.Docs) == 0 {
				t.Errorf("%s/%s: expected results, got none", name, tc.name)
			}
			if !tc.wantDocs && len(res.Docs) != 0 {
				t.Errorf("%s/%s: expected empty result, got %d docs", name, tc.name, len(res.Docs))
			}
			fetches := 0
			for _, op := range res.Stats.Plan {
				if op.Kind.String() == "fetch" {
					fetches++
				}
			}
			if fetches != tc.wantFetch {
				t.Errorf("%s/%s: %d fetch ops, want %d", name, tc.name, fetches, tc.wantFetch)
			}
			if tc.wantFetch > 0 && res.Stats.Latency <= 0 {
				t.Errorf("%s/%s: latency %v, want > 0 (fetch probes are priced)", name, tc.name, res.Stats.Latency)
			}
			if res.Stats.Latency != res.Stats.CPUTime+res.Stats.GPUTime {
				t.Errorf("%s/%s: latency %v != cpu %v + gpu %v", name, tc.name,
					res.Stats.Latency, res.Stats.CPUTime, res.Stats.GPUTime)
			}
			// An empty conjunction must not reach the intersection stage.
			if !tc.wantDocs && len(res.Stats.Ops) != 0 {
				t.Errorf("%s/%s: %d intersections on an empty conjunction", name, tc.name, len(res.Stats.Ops))
			}
		}
	}
}
