package core

import (
	"math/rand"
	"reflect"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/sched"
	"griffin/internal/workload"
)

func TestPerQueryAgreesWithOtherModes(t *testing.T) {
	c := testCorpus(t)
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	pq, err := New(c.Index, Config{Mode: PerQueryHybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	cpuE, _, _ := newEngines(t, c)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 25, PopularityAlpha: 0.6, Seed: 15,
	})
	for qi, q := range queries {
		r1, err := pq.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := cpuE.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(docIDsOf(r1), docIDsOf(r2)) {
			t.Fatalf("query %d: per-query results differ from cpu-only", qi)
		}
	}
}

func TestPerQueryNeverMigrates(t *testing.T) {
	// The Figure 1(c) defining property: one processor for the whole
	// query. Build the migration-forcing workload from TestHybridMigration
	// and verify per-query mode stays on the GPU throughout.
	b := index.NewBuilder(index.CodecEF)
	rng := rand.New(rand.NewSource(16))
	_ = b.AddPostings("a", workload.GenList(rng, 5_000, 3_000_000), nil)
	_ = b.AddPostings("b", workload.GenList(rng, 6_000, 3_000_000), nil)
	_ = b.AddPostings("huge", workload.GenList(rng, 2_000_000, 3_000_000), nil)
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, err := New(ix, Config{Mode: PerQueryHybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search([]string{"a", "b", "huge"})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Stats.Ops {
		if op.Where != sched.GPU {
			t.Fatalf("per-query placement moved op %s to %v", op.Stage, op.Where)
		}
	}
	if res.Stats.Migrated {
		t.Fatal("per-query mode reported migration")
	}

	// Same workload under Griffin migrates and must be at least as fast:
	// the skewed final intersection is what Figure 1(d) fixes.
	g, err := New(ix, Config{Mode: Hybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := g.Search([]string{"a", "b", "huge"})
	if err != nil {
		t.Fatal(err)
	}
	if gres.Stats.Latency > res.Stats.Latency {
		t.Fatalf("griffin (%v) slower than per-query placement (%v) on migration workload",
			gres.Stats.Latency, res.Stats.Latency)
	}
}

func TestPerQueryHighFirstRatioRunsOnCPU(t *testing.T) {
	b := index.NewBuilder(index.CodecEF)
	rng := rand.New(rand.NewSource(17))
	_ = b.AddPostings("tiny", workload.GenList(rng, 100, 3_000_000), nil)
	_ = b.AddPostings("huge", workload.GenList(rng, 100*200, 3_000_000), nil)
	ix, _ := b.Build()
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	e, _ := New(ix, Config{Mode: PerQueryHybrid, Device: dev})
	res, err := e.Search([]string{"tiny", "huge"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.GPUTime != 0 {
		t.Fatalf("high-ratio query used GPU time %v", res.Stats.GPUTime)
	}
}

func TestPerQueryModeString(t *testing.T) {
	if PerQueryHybrid.String() != "per-query-hybrid" {
		t.Fatalf("String() = %q", PerQueryHybrid.String())
	}
}
