package core

import (
	"errors"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/index"
	"griffin/internal/workload"
)

// tinyDevice returns a device whose memory is too small for real lists,
// forcing allocation failures mid-query.
func tinyDevice(memory int64) *gpu.Device {
	model := hwmodel.DefaultGPU()
	model.MemoryBytes = memory
	return gpu.New(model, 0)
}

func TestGPUSearchPropagatesOOM(t *testing.T) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    500_000,
		NumTerms:   10,
		MaxListLen: 200_000,
		MinListLen: 100_000,
		Alpha:      0.3,
		Codec:      index.CodecEF,
		Seed:       61,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := tinyDevice(64 << 10) // 64 KB: nothing fits
	e, err := New(c.Index, Config{Mode: GPUOnly, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Search([]string{c.Terms[0], c.Terms[1]})
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Partial allocations from the failed query must not leak forever:
	// after the error the device should be re-usable once freed. (The
	// engine frees its tracked buffers via the deferred freeAll.)
	if got := dev.Allocated(); got != 0 {
		t.Fatalf("failed query leaked %d device bytes", got)
	}
}

func TestHybridSearchPropagatesOOM(t *testing.T) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    500_000,
		NumTerms:   10,
		MaxListLen: 200_000,
		MinListLen: 100_000,
		Alpha:      0.3,
		Codec:      index.CodecEF,
		Seed:       62,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := tinyDevice(64 << 10)
	e, err := New(c.Index, Config{Mode: Hybrid, Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Search([]string{c.Terms[0], c.Terms[1]})
	if !errors.Is(err, gpu.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if got := dev.Allocated(); got != 0 {
		t.Fatalf("failed query leaked %d device bytes", got)
	}
}

func TestCPUOnlyUnaffectedByTinyDevice(t *testing.T) {
	// CPU-only mode never touches the device even if one is configured.
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    100_000,
		NumTerms:   5,
		MaxListLen: 20_000,
		MinListLen: 5_000,
		Alpha:      0.3,
		Codec:      index.CodecEF,
		Seed:       63,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c.Index, Config{Mode: CPUOnly, Device: tinyDevice(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search([]string{c.Terms[0], c.Terms[1]}); err != nil {
		t.Fatalf("CPU-only failed with tiny device: %v", err)
	}
}
