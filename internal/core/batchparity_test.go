package core

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

// The batching golden parity matrix: batching off and on, across
// execution modes and device counts, every configuration must reproduce
// the stored pre-batching goldens bit for bit — score bits, candidate
// counts, migration flags, and (for sequential contention-free queries)
// the full per-op trace including simulated timings. Batching moves
// simulated time only under cross-query concurrency; sequential queries
// through an enabled batcher lead rebate-free batches of one, so even
// their timelines must not move.
func TestBatchingGoldenParityMatrix(t *testing.T) {
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 200, PopularityAlpha: 0.7, Seed: 7,
	})
	const n = 60 // prefix of the golden log: the matrix is 12 engine runs

	data, err := readGolden(goldenPath)
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []Mode{CPUOnly, GPUOnly, Hybrid} {
		wantRows, ok := want.Modes[mode.String()]
		if !ok {
			t.Fatalf("golden corpus has no mode %s", mode)
		}
		for _, devices := range []int{1, 2} {
			for _, window := range []time.Duration{0, 200 * time.Microsecond} {
				label := fmt.Sprintf("%s/devices=%d/window=%v", mode, devices, window)
				cfg := Config{Mode: mode, Devices: devices, BatchWindow: window}
				if mode != CPUOnly {
					cfg.Device = gpu.New(hwmodel.DefaultGPU(), 0)
				}
				e, err := New(c.Index, cfg)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				for i, q := range queries[:n] {
					res, err := e.Search(q.Terms)
					if err != nil {
						t.Fatalf("%s q%d %v: %v", label, i, q.Terms, err)
					}
					rec := goldenRecord(res)
					rec.Terms = q.Terms
					compareGolden(t, label, i, rec, wantRows[i])
					if t.Failed() {
						t.Fatalf("%s: diverged from the pre-batching goldens", label)
					}
				}
				e.Close()
			}
		}
	}
}

// Concurrent queries through an enabled batcher coalesce for real —
// and still reproduce the golden result bits. Timings shift (that is
// the point), so only the result-shaped fields are compared.
func TestBatchingConcurrentResultsMatchGoldens(t *testing.T) {
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 200, PopularityAlpha: 0.7, Seed: 7,
	})

	data, err := readGolden(goldenPath)
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantRows := want.Modes[Hybrid.String()]

	e, err := New(c.Index, Config{
		Mode:        Hybrid,
		Device:      gpu.New(hwmodel.DefaultGPU(), 0),
		BatchWindow: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	terms := make([][]string, len(queries))
	for i, q := range queries {
		terms[i] = q.Terms
	}
	results := e.SearchBatch(terms, 8)
	for i, br := range results {
		if br.Err != nil {
			t.Fatalf("q%d %v: %v", i, terms[i], br.Err)
		}
		rec := goldenRecord(br.Result)
		wantRow := wantRows[i]
		if rec.Candidates != wantRow.Candidates || rec.Migrated != wantRow.Migrated {
			t.Fatalf("q%d %v: candidates/migrated (%d,%v) != golden (%d,%v)",
				i, terms[i], rec.Candidates, rec.Migrated, wantRow.Candidates, wantRow.Migrated)
		}
		if len(rec.Docs) != len(wantRow.Docs) {
			t.Fatalf("q%d %v: %d docs != golden %d", i, terms[i], len(rec.Docs), len(wantRow.Docs))
		}
		for j := range wantRow.Docs {
			if rec.Docs[j] != wantRow.Docs[j] {
				t.Fatalf("q%d %v: doc[%d] %+v != golden %+v", i, terms[i], j, rec.Docs[j], wantRow.Docs[j])
			}
		}
	}
	// The run must have actually batched — otherwise this proves nothing.
	if st := e.BatchStats(); st.Members <= st.Batches {
		t.Fatalf("concurrent run never coalesced: %+v", st)
	}
}
