package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

// The golden-equivalence corpus pins the engine's observable behaviour —
// top-k results (exact score bits), candidate counts, migration flags, and
// the per-intersection scheduler trace — for a seeded corpus and query log
// across all four execution modes. The goldens were generated from the
// pre-plan-refactor engine (the four search* monoliths); the refactored
// plan-builder/executor pipeline must reproduce them bit for bit.
//
// Regenerate (only when intentionally changing engine semantics) with:
//
//	go test ./internal/core -run TestGoldenEquivalence -update-goldens

var updateGoldens = flag.Bool("update-goldens", false, "rewrite the golden-equivalence corpus from the current engine")

// The corpus is stored gzip-compressed (the JSON is ~650 KB of highly
// repetitive records; compressed it is a tenth of that in the repo).
const goldenPath = "testdata/golden_equivalence.json.gz"

// readGolden decompresses the stored corpus.
func readGolden(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// writeGolden compresses and writes the corpus (-update-goldens only).
// The gzip header carries no name or timestamp, so regeneration with
// unchanged content is byte-stable.
func writeGolden(path string, data []byte) error {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
	if err != nil {
		return err
	}
	if _, err := zw.Write(data); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

type goldenDoc struct {
	DocID     uint32 `json:"doc_id"`
	ScoreBits uint32 `json:"score_bits"`
}

type goldenOp struct {
	Stage    string  `json:"stage"`
	Where    string  `json:"where"`
	Ratio    float64 `json:"ratio"`
	ShortLen int     `json:"short_len"`
	LongLen  int     `json:"long_len"`
	OutLen   int     `json:"out_len"`
	TookNS   int64   `json:"took_ns"`
}

type goldenQuery struct {
	Terms      []string    `json:"terms"`
	Candidates int         `json:"candidates"`
	Migrated   bool        `json:"migrated"`
	Docs       []goldenDoc `json:"docs"`
	Ops        []goldenOp  `json:"ops"`
}

type goldenFile struct {
	Modes map[string][]goldenQuery `json:"modes"`
}

func goldenModes(t testing.TB, c *workload.Corpus) map[string]*Engine {
	t.Helper()
	dev := gpu.New(hwmodel.DefaultGPU(), 0)
	out := make(map[string]*Engine)
	for _, m := range []Mode{CPUOnly, GPUOnly, Hybrid, PerQueryHybrid} {
		cfg := Config{Mode: m}
		if m != CPUOnly {
			cfg.Device = dev
		}
		e, err := New(c.Index, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[m.String()] = e
	}
	return out
}

func goldenRecord(res *Result) goldenQuery {
	g := goldenQuery{
		Candidates: res.Stats.Candidates,
		Migrated:   res.Stats.Migrated,
	}
	for _, d := range res.Docs {
		g.Docs = append(g.Docs, goldenDoc{DocID: d.DocID, ScoreBits: math.Float32bits(d.Score)})
	}
	for _, op := range res.Stats.Ops {
		g.Ops = append(g.Ops, goldenOp{
			Stage:    op.Stage,
			Where:    op.Where.String(),
			Ratio:    op.Ratio,
			ShortLen: op.ShortLen,
			LongLen:  op.LongLen,
			OutLen:   op.OutLen,
			TookNS:   int64(op.Took),
		})
	}
	return g
}

func TestGoldenEquivalence(t *testing.T) {
	c := testCorpus(t)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 200, PopularityAlpha: 0.7, Seed: 7,
	})
	engines := goldenModes(t, c)

	got := goldenFile{Modes: make(map[string][]goldenQuery)}
	for name, e := range engines {
		rows := make([]goldenQuery, len(queries))
		for i, q := range queries {
			res, err := e.Search(q.Terms)
			if err != nil {
				t.Fatalf("%s query %d %v: %v", name, i, q.Terms, err)
			}
			// Sequential queries admit into an idle device runtime: the
			// shared-runtime path must charge zero queueing delay, or the
			// golden timings below could not match the private-stream era.
			if res.Stats.GPUWait != 0 {
				t.Fatalf("%s query %d %v: contention-free query charged %v queueing delay",
					name, i, q.Terms, res.Stats.GPUWait)
			}
			rec := goldenRecord(res)
			rec.Terms = q.Terms
			rows[i] = rec
		}
		got.Modes[name] = rows
	}

	if *updateGoldens {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(&got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := writeGolden(goldenPath, data); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d modes x %d queries)", goldenPath, len(got.Modes), len(queries))
		return
	}

	data, err := readGolden(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-goldens): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	for name, wantRows := range want.Modes {
		gotRows, ok := got.Modes[name]
		if !ok {
			t.Fatalf("mode %s missing from run", name)
		}
		if len(gotRows) != len(wantRows) {
			t.Fatalf("%s: %d queries, golden has %d", name, len(gotRows), len(wantRows))
		}
		for i := range wantRows {
			compareGolden(t, name, i, gotRows[i], wantRows[i])
		}
	}
}

func compareGolden(t *testing.T, mode string, qi int, got, want goldenQuery) {
	t.Helper()
	if got.Candidates != want.Candidates {
		t.Errorf("%s q%d %v: candidates %d != golden %d", mode, qi, want.Terms, got.Candidates, want.Candidates)
	}
	if got.Migrated != want.Migrated {
		t.Errorf("%s q%d %v: migrated %v != golden %v", mode, qi, want.Terms, got.Migrated, want.Migrated)
	}
	if len(got.Docs) != len(want.Docs) {
		t.Errorf("%s q%d %v: %d docs != golden %d", mode, qi, want.Terms, len(got.Docs), len(want.Docs))
	} else {
		for j := range want.Docs {
			if got.Docs[j] != want.Docs[j] {
				t.Errorf("%s q%d %v: doc[%d] %+v != golden %+v", mode, qi, want.Terms, j, got.Docs[j], want.Docs[j])
			}
		}
	}
	if len(got.Ops) != len(want.Ops) {
		t.Errorf("%s q%d %v: %d ops != golden %d", mode, qi, want.Terms, len(got.Ops), len(want.Ops))
		return
	}
	for j := range want.Ops {
		if got.Ops[j] != want.Ops[j] {
			t.Errorf("%s q%d %v: op[%d]\n got    %+v\n golden %+v", mode, qi, want.Terms, j, got.Ops[j], want.Ops[j])
		}
	}
}
