package core

import (
	"reflect"
	"testing"

	"griffin/internal/workload"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	c := testCorpus(t)
	_, _, hybE := newEngines(t, c)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 30, PopularityAlpha: 0.6, Seed: 18,
	})
	batch := make([][]string, len(queries))
	for i, q := range queries {
		batch[i] = q.Terms
	}
	results := hybE.SearchBatch(batch, 8)
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(r.Terms, queries[i].Terms) {
			t.Fatalf("query %d: order lost", i)
		}
		seq, err := hybE.Search(queries[i].Terms)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Stats.Candidates != seq.Stats.Candidates {
			t.Fatalf("query %d: batch %d candidates vs sequential %d",
				i, r.Result.Stats.Candidates, seq.Stats.Candidates)
		}
		if !reflect.DeepEqual(docIDsOf(r.Result), docIDsOf(seq)) {
			t.Fatalf("query %d: batch top-k differs from sequential", i)
		}
	}
}

func TestSearchBatchEmptyAndWorkerClamping(t *testing.T) {
	c := testCorpus(t)
	cpuE, _, _ := newEngines(t, c)
	if got := cpuE.SearchBatch(nil, 4); len(got) != 0 {
		t.Fatal("empty batch produced results")
	}
	// More workers than queries must still produce all results.
	batch := [][]string{{c.Terms[0]}, {c.Terms[1]}}
	got := cpuE.SearchBatch(batch, 64)
	if len(got) != 2 || got[0].Err != nil || got[1].Err != nil {
		t.Fatalf("clamped batch wrong: %+v", got)
	}
	// workers <= 0 defaults to GOMAXPROCS.
	got = cpuE.SearchBatch(batch, 0)
	if len(got) != 2 {
		t.Fatal("default-worker batch wrong")
	}
}
