package core

import (
	"errors"
	"reflect"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/index"
	"griffin/internal/workload"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	c := testCorpus(t)
	_, _, hybE := newEngines(t, c)
	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 30, PopularityAlpha: 0.6, Seed: 18,
	})
	batch := make([][]string, len(queries))
	for i, q := range queries {
		batch[i] = q.Terms
	}
	results := hybE.SearchBatch(batch, 8)
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if !reflect.DeepEqual(r.Terms, queries[i].Terms) {
			t.Fatalf("query %d: order lost", i)
		}
		seq, err := hybE.Search(queries[i].Terms)
		if err != nil {
			t.Fatal(err)
		}
		if r.Result.Stats.Candidates != seq.Stats.Candidates {
			t.Fatalf("query %d: batch %d candidates vs sequential %d",
				i, r.Result.Stats.Candidates, seq.Stats.Candidates)
		}
		if !reflect.DeepEqual(docIDsOf(r.Result), docIDsOf(seq)) {
			t.Fatalf("query %d: batch top-k differs from sequential", i)
		}
	}
}

// Mid-batch failures stay per-query: a query that dies on the device
// reports its own error in its own submission slot, while every other
// query of the batch completes normally, in order. (The atomic
// work-index counter hands each slot to exactly one worker, so a failed
// slot can neither stall nor reorder its neighbours.)
func TestSearchBatchErrorIsolationAndOrder(t *testing.T) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    500_000,
		NumTerms:   10,
		MaxListLen: 200_000,
		MinListLen: 100_000,
		Alpha:      0.3,
		Codec:      index.CodecEF,
		Seed:       64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 64 KB device: any query that reaches the device OOMs. Queries with
	// a missing term short-circuit before device work and succeed.
	e, err := New(c.Index, Config{Mode: GPUOnly, Device: tinyDevice(64 << 10)})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]string, 0, 20)
	for i := 0; i < 10; i++ {
		batch = append(batch,
			[]string{c.Terms[i%len(c.Terms)], c.Terms[(i+1)%len(c.Terms)]}, // OOMs
			[]string{c.Terms[i%len(c.Terms)], "no-such-term"})              // succeeds, empty
	}
	results := e.SearchBatch(batch, 6)
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d queries", len(results), len(batch))
	}
	for i, r := range results {
		if !reflect.DeepEqual(r.Terms, batch[i]) {
			t.Fatalf("slot %d holds terms %v, want %v (submission order lost)", i, r.Terms, batch[i])
		}
		if i%2 == 0 {
			if !errors.Is(r.Err, gpu.ErrOutOfMemory) {
				t.Fatalf("slot %d: err = %v, want ErrOutOfMemory", i, r.Err)
			}
			if r.Result != nil {
				t.Fatalf("slot %d: failed query carries a result", i)
			}
		} else {
			if r.Err != nil {
				t.Fatalf("slot %d: healthy query failed: %v (neighbour's error leaked)", i, r.Err)
			}
			if r.Result == nil || len(r.Result.Docs) != 0 {
				t.Fatalf("slot %d: missing-term query result wrong: %+v", i, r.Result)
			}
		}
	}
}

func TestSearchBatchEmptyAndWorkerClamping(t *testing.T) {
	c := testCorpus(t)
	cpuE, _, _ := newEngines(t, c)
	if got := cpuE.SearchBatch(nil, 4); len(got) != 0 {
		t.Fatal("empty batch produced results")
	}
	// More workers than queries must still produce all results.
	batch := [][]string{{c.Terms[0]}, {c.Terms[1]}}
	got := cpuE.SearchBatch(batch, 64)
	if len(got) != 2 || got[0].Err != nil || got[1].Err != nil {
		t.Fatalf("clamped batch wrong: %+v", got)
	}
	// workers <= 0 defaults to GOMAXPROCS.
	got = cpuE.SearchBatch(batch, 0)
	if len(got) != 2 {
		t.Fatal("default-worker batch wrong")
	}
}
