package core

import (
	"fmt"
	"sync"
	"testing"

	"griffin/internal/gpu"
	"griffin/internal/hwmodel"
	"griffin/internal/workload"
)

func newCacheDevice() *gpu.Device {
	return gpu.New(hwmodel.DefaultGPU(), 0)
}

func allocBuf(t *testing.T, dev *gpu.Device, bytes int64) *gpu.Buffer {
	t.Helper()
	b, err := dev.NewStream().Alloc(bytes)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestListCacheHitAndMiss(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(1 << 20)
	b1 := allocBuf(t, dev, 100)
	rel, ok := c.put("a", b1)
	if !ok {
		t.Fatal("put failed")
	}
	rel()
	got, rel2, ok := c.get("a")
	if !ok || got != b1 {
		t.Fatal("get after put failed")
	}
	rel2()
	if _, _, ok := c.get("b"); ok {
		t.Fatal("hit on absent key")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
}

func TestListCacheDuplicatePutRejected(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(1 << 20)
	b1 := allocBuf(t, dev, 100)
	b2 := allocBuf(t, dev, 100)
	rel, ok := c.put("a", b1)
	if !ok {
		t.Fatal("first put failed")
	}
	rel()
	if _, ok := c.put("a", b2); ok {
		t.Fatal("duplicate put accepted")
	}
	// Caller keeps ownership of the rejected buffer.
	b2.Free()
	got, rel2, _ := c.get("a")
	if got != b1 {
		t.Fatal("duplicate put replaced entry")
	}
	rel2()
}

func TestListCacheLRUEviction(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(300)
	for _, k := range []string{"a", "b", "c"} {
		rel, ok := c.put(k, allocBuf(t, dev, 100))
		if !ok {
			t.Fatalf("put %q failed", k)
		}
		rel()
	}
	// Touch "a" so "b" is the LRU victim.
	if _, rel, ok := c.get("a"); ok {
		rel()
	} else {
		t.Fatal("get a failed")
	}
	rel, ok := c.put("d", allocBuf(t, dev, 100))
	if !ok {
		t.Fatal("put d failed")
	}
	rel()
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU victim survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		_, rel, ok := c.get(k)
		if !ok {
			t.Fatalf("%q evicted unexpectedly", k)
		}
		rel()
	}
	// The evicted unreferenced buffer must have been freed: 3 live cached
	// buffers remain.
	if got := dev.Allocated(); got != 300 {
		t.Fatalf("device allocated %d, want 300", got)
	}
}

func TestListCacheEvictionDefersFreeWhileReferenced(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(100)
	b1 := allocBuf(t, dev, 100)
	rel1, ok := c.put("a", b1)
	if !ok {
		t.Fatal("put failed")
	}
	// rel1 not called yet: "a" is referenced. Inserting "b" evicts "a",
	// but its buffer must survive until release.
	rel2, ok := c.put("b", allocBuf(t, dev, 100))
	if !ok {
		t.Fatal("second put failed")
	}
	rel2()
	if b1.Data == nil && dev.Allocated() != 200 {
		t.Fatal("referenced victim freed early")
	}
	if got := dev.Allocated(); got != 200 {
		t.Fatalf("allocated %d before release, want 200", got)
	}
	rel1()
	if got := dev.Allocated(); got != 100 {
		t.Fatalf("allocated %d after release, want 100", got)
	}
}

func TestListCacheRejectsOversized(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(50)
	b := allocBuf(t, dev, 100)
	if _, ok := c.put("big", b); ok {
		t.Fatal("oversized entry accepted")
	}
	if c.len() != 0 {
		t.Fatal("oversized entry stored")
	}
}

func TestListCacheDrop(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(1 << 20)
	for i := 0; i < 5; i++ {
		rel, ok := c.put(fmt.Sprintf("t%d", i), allocBuf(t, dev, 64))
		if !ok {
			t.Fatal("put failed")
		}
		rel()
	}
	c.drop()
	if c.len() != 0 || c.used != 0 {
		t.Fatalf("drop left %d entries, %d bytes", c.len(), c.used)
	}
	if dev.Allocated() != 0 {
		t.Fatalf("drop leaked %d device bytes", dev.Allocated())
	}
}

func TestEngineCacheReducesRepeatLatency(t *testing.T) {
	// A repeated query must get cheaper once its lists are resident: the
	// second run skips the PCIe uploads.
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    2_000_000,
		NumTerms:   20,
		MaxListLen: 500_000,
		MinListLen: 50_000,
		Alpha:      0.7,
		Seed:       31,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := newCacheDevice()
	e, err := New(c.Index, Config{Mode: GPUOnly, Device: dev, CacheLists: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	q := []string{c.Terms[0], c.Terms[1]}
	first, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if e.CachedLists() == 0 {
		t.Fatal("nothing cached")
	}
	if second.Stats.Latency >= first.Stats.Latency {
		t.Fatalf("warm query (%v) not faster than cold (%v)",
			second.Stats.Latency, first.Stats.Latency)
	}
	// Results identical either way.
	if first.Stats.Candidates != second.Stats.Candidates {
		t.Fatal("cache changed results")
	}
	// Close releases the cached device memory.
	e.Close()
	if dev.Allocated() != 0 {
		t.Fatalf("engine leaked %d device bytes after Close", dev.Allocated())
	}
}

func TestEngineCacheCorrectnessUnderEviction(t *testing.T) {
	// A cache smaller than the working set forces constant eviction;
	// results must stay identical to the uncached engine.
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    500_000,
		NumTerms:   30,
		MaxListLen: 100_000,
		MinListLen: 10_000,
		Alpha:      0.6,
		Seed:       32,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := newCacheDevice()
	cached, err := New(c.Index, Config{
		Mode: GPUOnly, Device: dev, CacheLists: true, CacheBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cached.Close()
	plain, err := New(c.Index, Config{Mode: GPUOnly, Device: dev})
	if err != nil {
		t.Fatal(err)
	}

	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 30, PopularityAlpha: 0.7, Seed: 33,
	})
	for qi, q := range queries {
		r1, err := cached.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := plain.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Stats.Candidates != r2.Stats.Candidates {
			t.Fatalf("query %d: cached %d vs plain %d candidates",
				qi, r1.Stats.Candidates, r2.Stats.Candidates)
		}
	}
}

func TestWarmupPreloadsCache(t *testing.T) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    1_000_000,
		NumTerms:   10,
		MaxListLen: 300_000,
		MinListLen: 50_000,
		Alpha:      0.6,
		Seed:       36,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := newCacheDevice()
	e, err := New(c.Index, Config{Mode: GPUOnly, Device: dev, CacheLists: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	loaded, took, err := e.Warmup([]string{c.Terms[0], c.Terms[1], "no-such-term"})
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 {
		t.Fatalf("loaded %d lists, want 2", loaded)
	}
	if took <= 0 {
		t.Fatal("warmup charged no simulated time")
	}
	if e.CachedLists() != 2 {
		t.Fatalf("CachedLists = %d", e.CachedLists())
	}

	// Warmed query must match the cost of a repeat (warm) query: no
	// uploads on the first search.
	q := []string{c.Terms[0], c.Terms[1]}
	first, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.Latency != second.Stats.Latency {
		t.Fatalf("warmed first query %v != warm repeat %v",
			first.Stats.Latency, second.Stats.Latency)
	}

	// Idempotent warmup.
	loaded, _, err = e.Warmup(q)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 {
		t.Fatalf("re-warmup loaded %d", loaded)
	}
}

func TestWarmupWithoutCacheIsNoop(t *testing.T) {
	c := testCorpus(t)
	e, err := New(c.Index, Config{Mode: CPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	loaded, took, err := e.Warmup([]string{c.Terms[0]})
	if err != nil || loaded != 0 || took != 0 {
		t.Fatalf("no-op warmup: loaded=%d took=%v err=%v", loaded, took, err)
	}
}

func TestEngineConcurrentSearches(t *testing.T) {
	// Engines accept concurrent Search calls; run a mixed load across all
	// modes on a shared device with the cache enabled and verify results
	// stay consistent (run with -race in CI).
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    500_000,
		NumTerms:   30,
		MaxListLen: 100_000,
		MinListLen: 10_000,
		Alpha:      0.6,
		Seed:       34,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := newCacheDevice()
	e, err := New(c.Index, Config{
		Mode: Hybrid, Device: dev, CacheLists: true, CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ref, err := New(c.Index, Config{Mode: CPUOnly})
	if err != nil {
		t.Fatal(err)
	}

	queries := workload.GenerateQueryLog(c, workload.QuerySpec{
		NumQueries: 24, PopularityAlpha: 0.7, Seed: 35,
	})
	want := make([]int, len(queries))
	for i, q := range queries {
		r, err := ref.Search(q.Terms)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Stats.Candidates
	}

	var wg sync.WaitGroup
	errs := make([]error, len(queries))
	for round := 0; round < 3; round++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, terms []string) {
				defer wg.Done()
				r, err := e.Search(terms)
				if err != nil {
					errs[i] = err
					return
				}
				if r.Stats.Candidates != want[i] {
					errs[i] = fmt.Errorf("query %d: got %d candidates, want %d",
						i, r.Stats.Candidates, want[i])
				}
			}(i, q.Terms)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestListCacheCounters(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(200)
	if _, _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	rel, _ := c.put("a", allocBuf(t, dev, 100))
	rel()
	if _, rel, ok := c.get("a"); ok {
		rel()
	} else {
		t.Fatal("get a failed")
	}
	// Two more puts overflow capacity: one eviction.
	rel, _ = c.put("b", allocBuf(t, dev, 100))
	rel()
	rel, _ = c.put("c", allocBuf(t, dev, 100))
	rel()
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 {
		t.Fatalf("counters hits/misses/evictions = %d/%d/%d, want 1/1/1",
			st.Hits, st.Misses, st.Evictions)
	}
	if st.Lists != 2 || st.Bytes != 200 {
		t.Fatalf("residency = %d lists / %d bytes, want 2/200", st.Lists, st.Bytes)
	}
}

func TestEngineCacheStatsSurface(t *testing.T) {
	c, err := workload.GenerateCorpus(workload.CorpusSpec{
		NumDocs:    500_000,
		NumTerms:   20,
		MaxListLen: 100_000,
		MinListLen: 10_000,
		Alpha:      0.7,
		Seed:       31,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := newCacheDevice()
	e, err := New(c.Index, Config{Mode: Hybrid, Device: dev, CacheLists: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	q := []string{workload.TermName(2), workload.TermName(5)}
	for i := 0; i < 2; i++ {
		if _, err := e.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	st := e.CacheStats()
	if st.Lists == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected populated counters after repeat query, got %+v", st)
	}
	cpu, err := New(c.Index, Config{Mode: CPUOnly})
	if err != nil {
		t.Fatal(err)
	}
	defer cpu.Close()
	if got := cpu.CacheStats(); got != (CacheStats{}) {
		t.Fatalf("cacheless engine reported %+v", got)
	}
}

// TestListCacheEvictWhileReferencedRace hammers the dead-entry
// free-on-last-release path from many goroutines (run under -race in CI):
// a capacity-1-entry cache guarantees every put evicts the previous
// entry, usually while other goroutines still hold references to it, so
// victims constantly transit the dead state and must be freed exactly
// once, on the last release.
func TestListCacheEvictWhileReferencedRace(t *testing.T) {
	dev := newCacheDevice()
	c := newListCache(100) // one 100-byte entry fits: every put evicts
	keys := []string{"a", "b", "c", "d"}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := keys[(g+i)%len(keys)]
				if buf, rel, ok := c.get(k); ok {
					if buf.Bytes != 100 {
						t.Errorf("corrupt buffer for %q: %d bytes", k, buf.Bytes)
					}
					rel()
					continue
				}
				b, err := dev.NewStream().Alloc(100)
				if err != nil {
					t.Error(err)
					return
				}
				if rel, ok := c.put(k, b); ok {
					rel()
				} else {
					b.Free()
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesced: exactly the resident entries' bytes remain allocated —
	// every dead victim was freed on its last release, none twice (a
	// double free would corrupt the device's allocation accounting).
	st := c.stats()
	if got := dev.Allocated(); got != st.Bytes {
		t.Fatalf("device allocated %d bytes, cache holds %d: leaked or double-freed victims", got, st.Bytes)
	}
	c.drop()
	if got := dev.Allocated(); got != 0 {
		t.Fatalf("device allocated %d bytes after drop, want 0", got)
	}
}
