package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPackFreqsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, n := range []int{1, 127, 128, 129, 1000, 5000} {
		freqs := make([]uint32, n)
		for i := range freqs {
			freqs[i] = 1 + uint32(rng.Intn(8))
		}
		// Sprinkle outliers to force wide blocks.
		for i := 0; i < n; i += 97 {
			freqs[i] = uint32(1 << uint(rng.Intn(20)))
		}
		fs := PackFreqs(freqs)
		if fs.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, fs.Len())
		}
		if !reflect.DeepEqual(fs.Decode(), freqs) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		for _, i := range []int{0, n / 2, n - 1} {
			if fs.At(i) != freqs[i] {
				t.Fatalf("n=%d: At(%d) = %d, want %d", n, i, fs.At(i), freqs[i])
			}
		}
	}
}

func TestPackFreqsQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		fs := PackFreqs(raw)
		return reflect.DeepEqual(fs.Decode(), raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackFreqsCompresses(t *testing.T) {
	// Typical skewed frequencies (1-4) must pack far below 32 bits/entry.
	freqs := make([]uint32, 10_000)
	rng := rand.New(rand.NewSource(76))
	for i := range freqs {
		freqs[i] = 1 + uint32(rng.Intn(4))
	}
	fs := PackFreqs(freqs)
	bitsPer := float64(fs.CompressedBits()) / float64(len(freqs))
	if bitsPer > 4 {
		t.Fatalf("%.1f bits/freq for values <= 4, expected <= 4", bitsPer)
	}
	if !reflect.DeepEqual(fs.Decode(), freqs) {
		t.Fatal("round trip mismatch")
	}
}

func TestPackFreqsBlockIsolation(t *testing.T) {
	// One huge value in block 1 must not widen block 0.
	freqs := make([]uint32, 256)
	for i := range freqs {
		freqs[i] = 1
	}
	freqs[200] = 1 << 30
	fs := PackFreqs(freqs)
	if fs.blocks[0].b != 1 {
		t.Fatalf("block 0 width %d, want 1", fs.blocks[0].b)
	}
	if fs.blocks[1].b < 31 {
		t.Fatalf("block 1 width %d, want >= 31", fs.blocks[1].b)
	}
	if !reflect.DeepEqual(fs.Decode(), freqs) {
		t.Fatal("round trip mismatch")
	}
}

func TestPackFreqsZeroValues(t *testing.T) {
	freqs := []uint32{0, 0, 5, 0}
	fs := PackFreqs(freqs)
	if !reflect.DeepEqual(fs.Decode(), freqs) {
		t.Fatal("zeros mishandled")
	}
}
