package index

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestBuildFromDocuments(t *testing.T) {
	b := NewBuilder(CodecEF)
	docs := []struct {
		id     uint32
		tokens []string
	}{
		{0, []string{"ppopp", "austria", "2018"}},
		{3, []string{"austria", "vienna", "austria"}},
		{7, []string{"ppopp", "vienna"}},
	}
	for _, d := range docs {
		if err := b.AddDocument(d.id, d.tokens); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs != 8 {
		t.Fatalf("NumDocs = %d, want 8", ix.NumDocs)
	}
	p, ok := ix.Lookup("austria")
	if !ok {
		t.Fatal("austria not indexed")
	}
	if got := p.DocIDs(); !reflect.DeepEqual(got, []uint32{0, 3}) {
		t.Fatalf("austria docIDs = %v", got)
	}
	if p.FreqOf(1) != 2 {
		t.Fatalf("austria freq in doc 3 = %d, want 2", p.FreqOf(1))
	}
	if _, ok := ix.Lookup("missing"); ok {
		t.Fatal("lookup of unindexed term succeeded")
	}
	if ix.NumTerms() != 4 {
		t.Fatalf("NumTerms = %d, want 4", ix.NumTerms())
	}
}

func TestAddDocumentOrderEnforced(t *testing.T) {
	b := NewBuilder(CodecEF)
	if err := b.AddDocument(5, []string{"xx"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddDocument(5, []string{"yy"}); !errors.Is(err, ErrDocOrder) {
		t.Fatalf("err = %v, want ErrDocOrder", err)
	}
	if err := b.AddDocument(4, []string{"yy"}); !errors.Is(err, ErrDocOrder) {
		t.Fatalf("err = %v, want ErrDocOrder", err)
	}
}

func TestAddPostingsAndDocLens(t *testing.T) {
	b := NewBuilder(CodecBoth)
	ids := []uint32{1, 5, 9, 200}
	freqs := []uint32{2, 1, 7, 3}
	if err := b.AddPostings("zebra", ids, freqs); err != nil {
		t.Fatal(err)
	}
	b.SetDocLen(200, 50)
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := ix.Lookup("zebra")
	if !reflect.DeepEqual(p.DocIDs(), ids) {
		t.Fatalf("docIDs = %v", p.DocIDs())
	}
	if !reflect.DeepEqual(p.Freqs.Decode(), freqs) {
		t.Fatalf("freqs = %v", p.Freqs.Decode())
	}
	if p.PFD == nil {
		t.Fatal("CodecBoth must materialize the PForDelta baseline")
	}
	if !reflect.DeepEqual(p.PFD.Decompress(), ids) {
		t.Fatal("PFD round trip mismatch")
	}
	if ix.DocLen(200) != 50 {
		t.Fatalf("DocLen(200) = %d", ix.DocLen(200))
	}
	if ix.DocLen(1) != 1 {
		t.Fatalf("unknown DocLen should default to 1, got %d", ix.DocLen(1))
	}
}

func TestAddPostingsRejectsNonAscending(t *testing.T) {
	b := NewBuilder(CodecEF)
	if err := b.AddPostings("t", []uint32{3, 3}, nil); err == nil {
		t.Fatal("expected error for duplicate docID")
	}
	if err := b.AddPostings("u", []uint32{5}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPostings("u", []uint32{4}, nil); err == nil {
		t.Fatal("expected error for descending append")
	}
}

func TestAddPostingsFreqsLengthMismatch(t *testing.T) {
	b := NewBuilder(CodecEF)
	if err := b.AddPostings("t", []uint32{1, 2}, []uint32{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSkipPointers(t *testing.T) {
	b := NewBuilder(CodecEF)
	n := 1000
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i * 7)
	}
	if err := b.AddPostings("t", ids, nil); err != nil {
		t.Fatal(err)
	}
	ix, _ := b.Build()
	p, _ := ix.Lookup("t")
	wantBlocks := (n + BlockSize - 1) / BlockSize
	if len(p.Skips) != wantBlocks {
		t.Fatalf("skips = %d, want %d", len(p.Skips), wantBlocks)
	}
	for i, sp := range p.Skips {
		if sp.FirstDocID != ids[i*BlockSize] {
			t.Fatalf("skip %d first = %d, want %d", i, sp.FirstDocID, ids[i*BlockSize])
		}
		if int(sp.Block) != i {
			t.Fatalf("skip %d block = %d", i, sp.Block)
		}
	}
}

func TestBlockListViews(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	n := 777
	ids := make([]uint32, n)
	cur := uint32(0)
	for i := range ids {
		cur += 1 + uint32(rng.Intn(50))
		ids[i] = cur
	}
	b := NewBuilder(CodecBoth)
	if err := b.AddPostings("t", ids, nil); err != nil {
		t.Fatal(err)
	}
	ix, _ := b.Build()
	p, _ := ix.Lookup("t")

	views := map[string]BlockList{
		"ef":  EFView{p.EF},
		"pfd": PFDView{p.PFD},
		"raw": RawView{ids},
	}
	for name, v := range views {
		if v.Len() != n {
			t.Fatalf("%s: Len = %d, want %d", name, v.Len(), n)
		}
		var got []uint32
		buf := make([]uint32, BlockSize)
		total := 0
		for i := 0; i < v.NumBlocks(); i++ {
			if v.BlockFirst(i) != ids[i*BlockSize] {
				t.Fatalf("%s: block %d first mismatch", name, i)
			}
			cnt := v.DecompressBlock(i, buf)
			if cnt != v.BlockLen(i) {
				t.Fatalf("%s: block %d len %d != BlockLen %d", name, i, cnt, v.BlockLen(i))
			}
			got = append(got, buf[:cnt]...)
			total += cnt
		}
		if !reflect.DeepEqual(got, ids) {
			t.Fatalf("%s: reassembled list differs", name)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	b := NewBuilder(CodecEF)
	terms := []string{"alpha", "beta", "gamma", "a-long-term-name"}
	want := map[string][]uint32{}
	for _, term := range terms {
		n := 1 + rng.Intn(500)
		ids := make([]uint32, n)
		freqs := make([]uint32, n)
		cur := uint32(0)
		for i := range ids {
			cur += 1 + uint32(rng.Intn(100))
			ids[i] = cur
			freqs[i] = 1 + uint32(rng.Intn(5))
		}
		if err := b.AddPostings(term, ids, freqs); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			b.SetDocLen(id, 10+uint32(rng.Intn(100)))
		}
		want[term] = ids
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumDocs != ix.NumDocs || got.AvgDocLen != ix.AvgDocLen {
		t.Fatalf("stats mismatch: %d/%f vs %d/%f", got.NumDocs, got.AvgDocLen, ix.NumDocs, ix.AvgDocLen)
	}
	if !reflect.DeepEqual(got.DocLens, ix.DocLens) {
		t.Fatal("DocLens mismatch")
	}
	if !reflect.DeepEqual(got.Terms(), ix.Terms()) {
		t.Fatal("terms mismatch")
	}
	for term, ids := range want {
		p, ok := got.Lookup(term)
		if !ok {
			t.Fatalf("term %q lost", term)
		}
		if !reflect.DeepEqual(p.DocIDs(), ids) {
			t.Fatalf("term %q docIDs differ after round trip", term)
		}
		orig, _ := ix.Lookup(term)
		if !reflect.DeepEqual(p.Freqs.Decode(), orig.Freqs.Decode()) {
			t.Fatalf("term %q freqs differ", term)
		}
		if !reflect.DeepEqual(p.Skips, orig.Skips) {
			t.Fatalf("term %q skips differ", term)
		}
	}
}

func TestReadIndexRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("x"),
		[]byte("NOPE furthermore this is not an index"),
		[]byte("GRIF\xff\xff\xff\xff"),
	} {
		if _, err := ReadIndex(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("ReadIndex(%q): err = %v, want ErrBadFormat", data, err)
		}
	}
}

func TestSerializeEmptyIndex(t *testing.T) {
	ix, err := NewBuilder(CodecEF).Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs != 0 || got.NumTerms() != 0 {
		t.Fatalf("empty index round trip: %d docs %d terms", got.NumDocs, got.NumTerms())
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"PPoPP-2018 Vienna/Austria", []string{"ppopp", "2018", "vienna", "austria"}},
		{"a b c", nil}, // single-rune tokens dropped
		{"", nil},
		{"Don't stop", []string{"don", "stop"}},
		{"  multiple   spaces  ", []string{"multiple", "spaces"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestListSizes(t *testing.T) {
	b := NewBuilder(CodecEF)
	_ = b.AddPostings("a", []uint32{1, 2, 3}, nil)
	_ = b.AddPostings("b", []uint32{5}, nil)
	ix, _ := b.Build()
	if got := ix.ListSizes(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("ListSizes = %v", got)
	}
}

func BenchmarkBuild10KTerms(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	type tl struct {
		term string
		ids  []uint32
	}
	var data []tl
	for i := 0; i < 200; i++ {
		n := 50 + rng.Intn(500)
		ids := make([]uint32, n)
		cur := uint32(0)
		for j := range ids {
			cur += 1 + uint32(rng.Intn(100))
			ids[j] = cur
		}
		data = append(data, tl{term: string(rune('a'+i%26)) + string(rune('0'+i/26)), ids: ids})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(CodecEF)
		for _, d := range data {
			if err := bld.AddPostings(d.term, d.ids, nil); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
