package index

import "griffin/internal/bitutil"

// FreqStore holds a posting list's within-document term frequencies in
// bit-packed 128-entry blocks: each block stores its values at the fixed
// width of its largest value. Frequencies are tiny and highly skewed
// (mostly 1-4), so packing cuts their footprint by ~8x versus raw u32 —
// §2.1.1's "each entry in the inverted list contains a document
// frequency" implies they travel with the index and must be compressed
// like the docIDs they annotate.
type FreqStore struct {
	n      int
	blocks []freqBlock
}

type freqBlock struct {
	b     uint8
	words []uint64
}

// PackFreqs compresses a frequency array.
func PackFreqs(freqs []uint32) *FreqStore {
	fs := &FreqStore{n: len(freqs)}
	for start := 0; start < len(freqs); start += BlockSize {
		end := start + BlockSize
		if end > len(freqs) {
			end = len(freqs)
		}
		chunk := freqs[start:end]
		b := 1
		for _, f := range chunk {
			if w := bitutil.BitsFor(uint64(f)); w > b {
				b = w
			}
		}
		w := bitutil.NewWriter(len(chunk) * b)
		for _, f := range chunk {
			w.WriteBits(uint64(f), b)
		}
		fs.blocks = append(fs.blocks, freqBlock{b: uint8(b), words: w.Words()})
	}
	return fs
}

// Len returns the number of stored frequencies.
func (fs *FreqStore) Len() int { return fs.n }

// At returns the i-th frequency.
func (fs *FreqStore) At(i int) uint32 {
	blk := &fs.blocks[i/BlockSize]
	return uint32(bitutil.GetBits(blk.words, (i%BlockSize)*int(blk.b), int(blk.b)))
}

// Decode returns all frequencies as a fresh slice.
func (fs *FreqStore) Decode() []uint32 {
	out := make([]uint32, fs.n)
	for i := range out {
		out[i] = fs.At(i)
	}
	return out
}

// CompressedBits returns the packed size in bits including per-block
// width bytes.
func (fs *FreqStore) CompressedBits() int64 {
	var bits int64
	for i := range fs.blocks {
		bits += int64(len(fs.blocks[i].words))*64 + 8
	}
	return bits
}
