// Package index implements the inverted index at the heart of query
// processing (§2.1): a term dictionary mapping each search term to a
// compressed posting list of ascending docIDs with per-document term
// frequencies, 128-element compression blocks, and per-block skip pointers
// (Figure 2) that let intersections locate candidate blocks by binary
// search without decompressing the rest of the list.
//
// Each posting list stores its docIDs in Elias-Fano form (Griffin's codec)
// and, optionally, in PForDelta form (the CPU baseline), so the
// experiments can compare both on identical data.
package index

import (
	"errors"
	"fmt"
	"sort"

	"griffin/internal/ef"
	"griffin/internal/pfordelta"
)

// BlockSize is the posting-list compression block size; both codecs share
// it (and §3.2 ties the GPU/CPU crossover threshold to it).
const BlockSize = ef.BlockSize

// SkipPointer addresses one compression block: the block's first docID and
// its position, supporting binary search over blocks (Figure 2).
type SkipPointer struct {
	FirstDocID uint32
	Block      int32
}

// PostingList holds one term's compressed postings.
type PostingList struct {
	// Term is the dictionary key.
	Term string
	// N is the number of documents containing the term (its document
	// frequency in the collection).
	N int
	// EF is the Elias-Fano-compressed docID list (always present).
	EF *ef.List
	// PFD is the PForDelta-compressed docID list (present when the index
	// was built with the Baseline codec enabled).
	PFD *pfordelta.List
	// Freqs stores the within-document frequency of the term in each
	// posting's document (bit-packed), used by BM25 (§2.1.3).
	Freqs *FreqStore
	// Skips are the per-block skip pointers.
	Skips []SkipPointer
	// GlobalN overrides N as the document frequency used for BM25 scoring
	// (0 = use N). A document-partitioned shard index sets it to the
	// term's collection-wide frequency so per-shard scores are
	// bit-identical to scoring against the unpartitioned index; every
	// structural use of the list (intersection, cost estimation) keeps
	// seeing the shard-local N.
	GlobalN int
}

// Len returns the posting count.
func (p *PostingList) Len() int { return p.N }

// ScoringN returns the document frequency BM25 should use: the
// collection-wide GlobalN when set (shard of a partitioned index), the
// list's own N otherwise.
func (p *PostingList) ScoringN() int {
	if p.GlobalN > 0 {
		return p.GlobalN
	}
	return p.N
}

// DocIDs decompresses and returns all docIDs (test/diagnostic path).
func (p *PostingList) DocIDs() []uint32 { return p.EF.Decompress() }

// FreqOf returns the term frequency of the posting at index i.
func (p *PostingList) FreqOf(i int) uint32 { return p.Freqs.At(i) }

// FreqForDoc returns the term frequency for docID d, locating the posting
// by binary search over the skip pointers and then within the candidate
// block (the lookup ranking performs per surviving candidate, §2.1.3).
// probes reports the binary-search comparisons for the cost model.
func (p *PostingList) FreqForDoc(d uint32) (freq uint32, probes int, found bool) {
	nb := len(p.EF.Blocks)
	lo, hi := 0, nb
	for lo < hi {
		probes++
		mid := (lo + hi) / 2
		if p.EF.Blocks[mid].FirstDocID <= d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, probes, false
	}
	bi := lo - 1
	blk := &p.EF.Blocks[bi]
	var buf [BlockSize]uint32
	n := blk.DecompressInto(buf[:])
	blo, bhi := 0, n
	for blo < bhi {
		probes++
		mid := (blo + bhi) / 2
		switch {
		case buf[mid] < d:
			blo = mid + 1
		case buf[mid] > d:
			bhi = mid
		default:
			return p.Freqs.At(bi*BlockSize + mid), probes, true
		}
	}
	return 0, probes, false
}

// Index is an in-memory inverted index plus the collection statistics BM25
// needs.
type Index struct {
	// NumDocs is the collection size.
	NumDocs int
	// DocLens[d] is the token length of document d.
	DocLens []uint32
	// AvgDocLen is the mean document length.
	AvgDocLen float64

	terms map[string]*PostingList
}

// Lookup returns the posting list for term, if indexed.
func (ix *Index) Lookup(term string) (*PostingList, bool) {
	p, ok := ix.terms[term]
	return p, ok
}

// NumTerms returns the dictionary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// Terms returns all dictionary terms in sorted order.
func (ix *Index) Terms() []string {
	out := make([]string, 0, len(ix.terms))
	for t := range ix.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ListSizes returns the posting-list lengths of every term (the Figure 10
// distribution input).
func (ix *Index) ListSizes() []int {
	out := make([]int, 0, len(ix.terms))
	for _, p := range ix.terms {
		out = append(out, p.N)
	}
	sort.Ints(out)
	return out
}

// DocLen returns document d's token length (1 if unknown, avoiding
// divide-by-zero in scoring).
func (ix *Index) DocLen(d uint32) uint32 {
	if int(d) < len(ix.DocLens) && ix.DocLens[d] > 0 {
		return ix.DocLens[d]
	}
	return 1
}

// WithGlobalStats returns a copy of this index carrying collection-wide
// statistics: fresh PostingList headers (sharing the compressed payloads
// — EF/PFD/freq blocks are immutable) whose GlobalN is the term's global
// document frequency from globalDF, plus global NumDocs/DocLens/AvgDocLen.
// This is the document-partitioned shard stamping of
// workload.PartitionIndex applied after the fact: a live-ingestion
// cluster restamps each shard's freshly merged segment at quiesce so
// per-shard BM25 scores are bit-identical to the unpartitioned engine.
// The headers are copies rather than in-place mutations because in-flight
// queries may still be reading the old lists' ScoringN.
func (ix *Index) WithGlobalStats(globalDF map[string]int, numDocs int, docLens []uint32, avgDocLen float64) *Index {
	out := &Index{
		NumDocs:   numDocs,
		DocLens:   docLens,
		AvgDocLen: avgDocLen,
		terms:     make(map[string]*PostingList, len(ix.terms)),
	}
	for t, pl := range ix.terms {
		cp := *pl
		cp.GlobalN = globalDF[t]
		out.terms[t] = &cp
	}
	return out
}

// Codec selects which compressed forms the builder materializes.
type Codec int

const (
	// CodecEF stores Elias-Fano only (Griffin's configuration).
	CodecEF Codec = iota
	// CodecBoth stores Elias-Fano plus the PForDelta baseline, for the
	// comparison experiments (Table 1, Figure 12).
	CodecBoth
)

// Builder accumulates documents and produces an Index.
type Builder struct {
	codec    Codec
	postings map[string]*building
	prebuilt map[string]*PostingList
	docLens  map[uint32]uint32
	maxDocID uint32
	hasDocs  bool
}

type building struct {
	docIDs []uint32
	freqs  []uint32
}

// NewBuilder returns a Builder using the given codec configuration.
func NewBuilder(codec Codec) *Builder {
	return &Builder{
		codec:    codec,
		postings: make(map[string]*building),
		docLens:  make(map[uint32]uint32),
	}
}

// ErrDocOrder is returned when documents are added with non-increasing IDs.
var ErrDocOrder = errors.New("index: documents must be added in ascending docID order")

// AddDocument indexes one document's token stream. Documents must arrive
// in strictly ascending docID order (the standard single-pass build).
func (b *Builder) AddDocument(docID uint32, tokens []string) error {
	if b.hasDocs && docID <= b.maxDocID {
		return fmt.Errorf("%w: got %d after %d", ErrDocOrder, docID, b.maxDocID)
	}
	b.hasDocs = true
	b.maxDocID = docID
	b.docLens[docID] = uint32(len(tokens))

	counts := make(map[string]uint32)
	for _, tok := range tokens {
		counts[tok]++
	}
	for term, freq := range counts {
		p := b.postings[term]
		if p == nil {
			p = &building{}
			b.postings[term] = p
		}
		p.docIDs = append(p.docIDs, docID)
		p.freqs = append(p.freqs, freq)
	}
	return nil
}

// AddPostings indexes a raw posting list directly (the synthetic-workload
// path): docIDs strictly ascending, freqs parallel (nil means all 1).
func (b *Builder) AddPostings(term string, docIDs []uint32, freqs []uint32) error {
	if freqs != nil && len(freqs) != len(docIDs) {
		return fmt.Errorf("index: %d freqs for %d docIDs", len(freqs), len(docIDs))
	}
	p := b.postings[term]
	if p == nil {
		p = &building{}
		b.postings[term] = p
	}
	for i, id := range docIDs {
		if len(p.docIDs) > 0 && id <= p.docIDs[len(p.docIDs)-1] {
			return fmt.Errorf("%w: term %q docID %d", ef.ErrNotAscending, term, id)
		}
		p.docIDs = append(p.docIDs, id)
		if freqs != nil {
			p.freqs = append(p.freqs, freqs[i])
		} else {
			p.freqs = append(p.freqs, 1)
		}
		if !b.hasDocs || id > b.maxDocID {
			b.maxDocID = id
			b.hasDocs = true
		}
	}
	return nil
}

// AddPrebuilt installs an already-compressed posting list verbatim —
// the segment-copy path of a live merge: a term untouched by the delta
// keeps its compressed blocks (the codecs are deterministic, so
// re-encoding the same postings would reproduce them byte for byte).
// The caller guarantees the list's documents are registered via
// SetDocLen (they determine NumDocs); a term added both ways keeps the
// rebuilt form.
func (b *Builder) AddPrebuilt(pl *PostingList) {
	if b.prebuilt == nil {
		b.prebuilt = make(map[string]*PostingList)
	}
	b.prebuilt[pl.Term] = pl
}

// SetDocLen records a document's token length for scoring (used with
// AddPostings; AddDocument records lengths automatically).
func (b *Builder) SetDocLen(docID uint32, n uint32) {
	b.docLens[docID] = n
	if !b.hasDocs || docID > b.maxDocID {
		b.maxDocID = docID
		b.hasDocs = true
	}
}

// Build compresses every accumulated posting list and returns the Index.
func (b *Builder) Build() (*Index, error) {
	ix := &Index{terms: make(map[string]*PostingList, len(b.postings)+len(b.prebuilt))}
	for term, pl := range b.prebuilt {
		ix.terms[term] = pl
	}
	if b.hasDocs {
		ix.NumDocs = int(b.maxDocID) + 1
		ix.DocLens = make([]uint32, ix.NumDocs)
		var sum uint64
		var cnt int
		for id, l := range b.docLens {
			ix.DocLens[id] = l
			sum += uint64(l)
			cnt++
		}
		if cnt > 0 {
			ix.AvgDocLen = float64(sum) / float64(cnt)
		}
	}

	for term, raw := range b.postings {
		efList, err := ef.Compress(raw.docIDs)
		if err != nil {
			return nil, fmt.Errorf("term %q: %w", term, err)
		}
		pl := &PostingList{
			Term:  term,
			N:     len(raw.docIDs),
			EF:    efList,
			Freqs: PackFreqs(raw.freqs),
		}
		if b.codec == CodecBoth {
			pfdList, err := pfordelta.Compress(raw.docIDs)
			if err != nil {
				return nil, fmt.Errorf("term %q: %w", term, err)
			}
			pl.PFD = pfdList
		}
		pl.Skips = make([]SkipPointer, len(efList.Blocks))
		for i := range efList.Blocks {
			pl.Skips[i] = SkipPointer{FirstDocID: efList.Blocks[i].FirstDocID, Block: int32(i)}
		}
		ix.terms[term] = pl
	}
	return ix, nil
}
