package index

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase alphanumeric terms, the minimal
// analyzer the indexer CLI and examples use. Anything that is not a letter
// or digit separates tokens; tokens shorter than 2 runes are dropped (they
// carry almost no retrieval signal and bloat the dictionary).
func Tokenize(text string) []string {
	var out []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() >= 2 {
			out = append(out, sb.String())
		}
		sb.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			sb.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			sb.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return out
}
