package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"griffin/internal/ef"
)

// Binary on-disk format (little-endian throughout):
//
//	magic "GRIF" | version u32
//	numDocs u64 | avgDocLen f64 | docLens [numDocs]u32
//	numTerms u64
//	per term:
//	  termLen u16 | term bytes
//	  n u64 | numBlocks u32
//	  per block: firstDocID u32 | n u16 | b u8 | highLen u32 |
//	             highWords u32 | high [..]u64 | lowWords u32 | low [..]u64
//	  numFreqBlocks u32
//	  per freq block: b u8 | words u16 | packed [..]u64
//
// Only the Elias-Fano form is serialized; a loaded index can re-derive the
// PForDelta baseline on demand for experiments.

const (
	magic   = "GRIF"
	version = 2
)

// ErrBadFormat is returned when the input is not a valid index file.
var ErrBadFormat = errors.New("index: bad file format")

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<20)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	write(uint32(version))
	write(uint64(ix.NumDocs))
	write(ix.AvgDocLen)
	write(ix.DocLens)
	terms := ix.Terms()
	write(uint64(len(terms)))
	for _, term := range terms {
		p := ix.terms[term]
		write(uint16(len(term)))
		if cw.err == nil {
			_, cw.err = cw.Write([]byte(term))
		}
		write(uint64(p.N))
		write(uint32(len(p.EF.Blocks)))
		for i := range p.EF.Blocks {
			blk := &p.EF.Blocks[i]
			write(blk.FirstDocID)
			write(uint16(blk.N))
			write(uint8(blk.B))
			write(uint32(blk.HighLen))
			write(uint32(len(blk.HighBits)))
			write(blk.HighBits)
			write(uint32(len(blk.LowBits)))
			write(blk.LowBits)
		}
		write(uint32(len(p.Freqs.blocks)))
		for i := range p.Freqs.blocks {
			fb := &p.Freqs.blocks[i]
			write(fb.b)
			write(uint16(len(fb.words)))
			write(fb.words)
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var err error
	read := func(v any) {
		if err == nil {
			err = binary.Read(br, binary.LittleEndian, v)
		}
	}
	head := make([]byte, 4)
	if _, e := io.ReadFull(br, head); e != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, e)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, head)
	}
	var ver uint32
	read(&ver)
	if err == nil && ver != version {
		return nil, fmt.Errorf("%w: version %d", ErrBadFormat, ver)
	}

	ix := &Index{terms: make(map[string]*PostingList)}
	var numDocs uint64
	read(&numDocs)
	read(&ix.AvgDocLen)
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadFormat, err)
	}
	if numDocs > 1<<34 {
		return nil, fmt.Errorf("%w: numDocs %d", ErrBadFormat, numDocs)
	}
	ix.NumDocs = int(numDocs)
	// Read doc lengths in bounded chunks: numDocs is untrusted, so a
	// single up-front allocation of numDocs*4 bytes would let a tiny
	// corrupt header demand gigabytes (found by FuzzReadIndex).
	ix.DocLens = make([]uint32, 0, min64(numDocs, 1<<20))
	for remaining := numDocs; remaining > 0 && err == nil; {
		chunk := min64(remaining, 1<<20)
		buf := make([]uint32, chunk)
		read(buf)
		if err == nil {
			ix.DocLens = append(ix.DocLens, buf...)
			remaining -= chunk
		}
	}
	if err != nil {
		return nil, fmt.Errorf("%w: doc lengths: %v", ErrBadFormat, err)
	}

	var numTerms uint64
	read(&numTerms)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	for t := uint64(0); t < numTerms; t++ {
		var termLen uint16
		read(&termLen)
		termBytes := make([]byte, termLen)
		if err == nil {
			_, err = io.ReadFull(br, termBytes)
		}
		var n uint64
		var numBlocks uint32
		read(&n)
		read(&numBlocks)
		if err != nil {
			return nil, fmt.Errorf("%w: term %d: %v", ErrBadFormat, t, err)
		}
		// Structural sanity: lengths are attacker-controlled input; reject
		// anything inconsistent before allocating (found by FuzzReadIndex).
		if n > 1<<34 || uint64(numBlocks) != (n+BlockSize-1)/BlockSize {
			return nil, fmt.Errorf("%w: term %d: n=%d blocks=%d", ErrBadFormat, t, n, numBlocks)
		}
		l := &ef.List{N: int(n), Blocks: make([]ef.Block, numBlocks)}
		for i := range l.Blocks {
			blk := &l.Blocks[i]
			var bn uint16
			var bb uint8
			var highLen, highWords, lowWords uint32
			read(&blk.FirstDocID)
			read(&bn)
			read(&bb)
			read(&highLen)
			read(&highWords)
			if err != nil {
				return nil, fmt.Errorf("%w: block header: %v", ErrBadFormat, err)
			}
			// Per-block bounds: <= BlockSize elements; the high-bits array
			// of an EF block is < 3*BlockSize bits (encoder invariant) and
			// low bits are at most 32 per element.
			if bn == 0 || bn > BlockSize || bb > 32 ||
				highLen > 3*BlockSize || highWords > (3*BlockSize+63)/64 ||
				uint64(highWords)*64 < uint64(highLen) {
				return nil, fmt.Errorf("%w: block %d header out of bounds", ErrBadFormat, i)
			}
			blk.N = int(bn)
			blk.B = int(bb)
			blk.HighLen = int(highLen)
			blk.HighBits = make([]uint64, highWords)
			read(blk.HighBits)
			read(&lowWords)
			if err != nil {
				return nil, fmt.Errorf("%w: block high bits: %v", ErrBadFormat, err)
			}
			if lowWords > (BlockSize*32+63)/64 {
				return nil, fmt.Errorf("%w: block %d low bits out of bounds", ErrBadFormat, i)
			}
			blk.LowBits = make([]uint64, lowWords)
			read(blk.LowBits)
		}
		var numFreqBlocks uint32
		read(&numFreqBlocks)
		if err != nil {
			return nil, fmt.Errorf("%w: term payload: %v", ErrBadFormat, err)
		}
		if uint64(numFreqBlocks) != (n+BlockSize-1)/BlockSize {
			return nil, fmt.Errorf("%w: freq blocks %d for n=%d", ErrBadFormat, numFreqBlocks, n)
		}
		fs := &FreqStore{n: int(n), blocks: make([]freqBlock, numFreqBlocks)}
		for i := range fs.blocks {
			var words uint16
			read(&fs.blocks[i].b)
			read(&words)
			if err != nil {
				return nil, fmt.Errorf("%w: freq block: %v", ErrBadFormat, err)
			}
			if fs.blocks[i].b == 0 || fs.blocks[i].b > 32 || words > (BlockSize*32+63)/64 {
				return nil, fmt.Errorf("%w: freq block %d out of bounds", ErrBadFormat, i)
			}
			fs.blocks[i].words = make([]uint64, words)
			read(fs.blocks[i].words)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: term payload: %v", ErrBadFormat, err)
		}
		term := string(termBytes)
		pl := &PostingList{Term: term, N: int(n), EF: l, Freqs: fs}
		pl.Skips = make([]SkipPointer, len(l.Blocks))
		for i := range l.Blocks {
			pl.Skips[i] = SkipPointer{FirstDocID: l.Blocks[i].FirstDocID, Block: int32(i)}
		}
		ix.terms[term] = pl
	}
	return ix, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}
