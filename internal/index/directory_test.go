package index

import (
	"reflect"
	"testing"
	"testing/fstest"
)

func TestIndexFS(t *testing.T) {
	fsys := fstest.MapFS{
		"b/doc2.txt":     {Data: []byte("quick brown dog")},
		"a/doc1.txt":     {Data: []byte("quick brown fox jumps")},
		"c/nested/d.txt": {Data: []byte("lazy fox sleeps")},
	}
	ix, paths, err := IndexFS(fsys, CodecEF)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted path order fixes docIDs.
	wantPaths := []string{"a/doc1.txt", "b/doc2.txt", "c/nested/d.txt"}
	if !reflect.DeepEqual(paths, wantPaths) {
		t.Fatalf("paths = %v", paths)
	}
	p, ok := ix.Lookup("fox")
	if !ok {
		t.Fatal("fox not indexed")
	}
	if got := p.DocIDs(); !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("fox docIDs = %v", got)
	}
	if ix.NumDocs != 3 {
		t.Fatalf("NumDocs = %d", ix.NumDocs)
	}
}

func TestIndexFSStableAcrossRebuilds(t *testing.T) {
	fsys := fstest.MapFS{
		"x.txt": {Data: []byte("alpha beta")},
		"y.txt": {Data: []byte("beta gamma")},
	}
	ix1, _, err := IndexFS(fsys, CodecEF)
	if err != nil {
		t.Fatal(err)
	}
	ix2, _, err := IndexFS(fsys, CodecEF)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, ix1, ix2)
}

func TestIndexFSEmpty(t *testing.T) {
	if _, _, err := IndexFS(fstest.MapFS{}, CodecEF); err == nil {
		t.Fatal("empty tree should error")
	}
}
