package index

import (
	"griffin/internal/ef"
	"griffin/internal/pfordelta"
)

// BlockList is the block-granular view of a compressed docID list that the
// CPU intersection algorithms operate on: enumerate blocks, binary-search
// their first docIDs (skip pointers), and decompress individual blocks on
// demand. Both codecs satisfy it via the adapters below.
type BlockList interface {
	// Len returns the total element count.
	Len() int
	// NumBlocks returns the block count.
	NumBlocks() int
	// BlockLen returns the element count of block i.
	BlockLen(i int) int
	// BlockFirst returns the first docID of block i (the skip pointer).
	BlockFirst(i int) uint32
	// DecompressBlock decodes block i into dst (capacity >= BlockSize) and
	// returns the element count.
	DecompressBlock(i int, dst []uint32) int
}

// RandomAccess is the optional BlockList extension for codecs that can
// read a single element of a compressed block without decoding the whole
// block (Elias-Fano's select-based access). The CPU skip-pointer search
// exploits it: probing a compressed block in place is far cheaper than
// decoding 128 elements per probe, and it is what makes the CPU the right
// processor above the λ = 128 crossover (§2.2, Figure 8).
type RandomAccess interface {
	// Get returns element i of block b without full decompression.
	Get(b, i int) uint32
}

// EFView adapts an Elias-Fano list to BlockList.
type EFView struct{ L *ef.List }

// Len implements BlockList.
func (v EFView) Len() int { return v.L.N }

// NumBlocks implements BlockList.
func (v EFView) NumBlocks() int { return len(v.L.Blocks) }

// BlockLen implements BlockList.
func (v EFView) BlockLen(i int) int { return v.L.Blocks[i].N }

// BlockFirst implements BlockList.
func (v EFView) BlockFirst(i int) uint32 { return v.L.Blocks[i].FirstDocID }

// DecompressBlock implements BlockList.
func (v EFView) DecompressBlock(i int, dst []uint32) int {
	return v.L.Blocks[i].DecompressInto(dst)
}

// Get implements RandomAccess via Elias-Fano select.
func (v EFView) Get(b, i int) uint32 { return v.L.Blocks[b].Get(i) }

// PFDView adapts a PForDelta list to BlockList.
type PFDView struct{ L *pfordelta.List }

// Len implements BlockList.
func (v PFDView) Len() int { return v.L.N }

// NumBlocks implements BlockList.
func (v PFDView) NumBlocks() int { return len(v.L.Blocks) }

// BlockLen implements BlockList.
func (v PFDView) BlockLen(i int) int { return v.L.Blocks[i].N }

// BlockFirst implements BlockList.
func (v PFDView) BlockFirst(i int) uint32 { return v.L.Blocks[i].FirstDocID }

// DecompressBlock implements BlockList.
func (v PFDView) DecompressBlock(i int, dst []uint32) int {
	return v.L.Blocks[i].DecompressInto(dst)
}

// RawView adapts an already-decompressed docID slice to BlockList (used
// for intermediate results, which live uncompressed). Blocks are synthetic
// BlockSize windows; "decompression" is a copy with zero modeled decode
// cost (the intersect package charges raw views as merges, not decodes).
type RawView struct{ IDs []uint32 }

// Len implements BlockList.
func (v RawView) Len() int { return len(v.IDs) }

// NumBlocks implements BlockList.
func (v RawView) NumBlocks() int {
	return (len(v.IDs) + BlockSize - 1) / BlockSize
}

// BlockLen implements BlockList.
func (v RawView) BlockLen(i int) int {
	lo := i * BlockSize
	hi := lo + BlockSize
	if hi > len(v.IDs) {
		hi = len(v.IDs)
	}
	return hi - lo
}

// BlockFirst implements BlockList.
func (v RawView) BlockFirst(i int) uint32 { return v.IDs[i*BlockSize] }

// DecompressBlock implements BlockList.
func (v RawView) DecompressBlock(i int, dst []uint32) int {
	lo := i * BlockSize
	hi := lo + BlockSize
	if hi > len(v.IDs) {
		hi = len(v.IDs)
	}
	return copy(dst, v.IDs[lo:hi])
}
