package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// genDocs builds a synthetic document set with a small vocabulary so
// posting lists span many documents.
func genDocs(rng *rand.Rand, n, vocab int) []Document {
	docs := make([]Document, n)
	for i := range docs {
		length := 3 + rng.Intn(12)
		tokens := make([]string, length)
		for j := range tokens {
			tokens[j] = fmt.Sprintf("w%03d", rng.Intn(vocab))
		}
		docs[i] = Document{ID: uint32(i * 2), Tokens: tokens} // gaps in IDs
	}
	return docs
}

// indexesEqual compares two indexes term by term.
func indexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if a.NumDocs != b.NumDocs {
		t.Fatalf("NumDocs %d vs %d", a.NumDocs, b.NumDocs)
	}
	if !reflect.DeepEqual(a.DocLens, b.DocLens) {
		t.Fatal("DocLens differ")
	}
	if !reflect.DeepEqual(a.Terms(), b.Terms()) {
		t.Fatal("term sets differ")
	}
	for _, term := range a.Terms() {
		pa, _ := a.Lookup(term)
		pb, _ := b.Lookup(term)
		if !reflect.DeepEqual(pa.DocIDs(), pb.DocIDs()) {
			t.Fatalf("term %q docIDs differ", term)
		}
		if !reflect.DeepEqual(pa.Freqs.Decode(), pb.Freqs.Decode()) {
			t.Fatalf("term %q freqs differ", term)
		}
	}
}

func TestBuildParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	docs := genDocs(rng, 2000, 50)

	seq := NewBuilder(CodecEF)
	for _, d := range docs {
		if err := seq.AddDocument(d.ID, d.Tokens); err != nil {
			t.Fatal(err)
		}
	}
	want, err := seq.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 16} {
		got, err := BuildParallel(docs, CodecEF, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		indexesEqual(t, want, got)
	}
}

func TestBuildParallelUnorderedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	docs := genDocs(rng, 500, 20)
	shuffled := make([]Document, len(docs))
	copy(shuffled, docs)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := BuildParallel(docs, CodecEF, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildParallel(shuffled, CodecEF, 4)
	if err != nil {
		t.Fatal(err)
	}
	indexesEqual(t, a, b)
}

func TestBuildParallelRejectsDuplicates(t *testing.T) {
	docs := []Document{
		{ID: 1, Tokens: []string{"aa"}},
		{ID: 1, Tokens: []string{"bb"}},
	}
	if _, err := BuildParallel(docs, CodecEF, 4); err == nil {
		t.Fatal("duplicate docIDs accepted")
	}
}

func TestBuildParallelEmpty(t *testing.T) {
	ix, err := BuildParallel(nil, CodecEF, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs != 0 || ix.NumTerms() != 0 {
		t.Fatalf("empty build: %d docs %d terms", ix.NumDocs, ix.NumTerms())
	}
}

func TestBuildParallelMoreWorkersThanDocs(t *testing.T) {
	docs := []Document{
		{ID: 3, Tokens: []string{"xx", "yy"}},
		{ID: 7, Tokens: []string{"yy"}},
	}
	ix, err := BuildParallel(docs, CodecEF, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := ix.Lookup("yy")
	if !ok || !reflect.DeepEqual(p.DocIDs(), []uint32{3, 7}) {
		t.Fatalf("yy postings wrong: %+v", p)
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(92))
	docs := genDocs(rng, 20000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildParallel(docs, CodecEF, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildSequentialBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(92))
	docs := genDocs(rng, 20000, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(CodecEF)
		for _, d := range docs {
			if err := bld.AddDocument(d.ID, d.Tokens); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
