package index

import (
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sort"
)

// IndexFS indexes every regular file of a filesystem tree as one document
// (docIDs assigned in sorted path order, so rebuilds are stable) using
// the parallel segment builder. It returns the index and the indexed
// paths, where paths[docID] names the document.
func IndexFS(fsys fs.FS, codec Codec) (*Index, []string, error) {
	var paths []string
	err := fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("index: no regular files to index")
	}

	docs := make([]Document, len(paths))
	for i, path := range paths {
		data, err := fs.ReadFile(fsys, path)
		if err != nil {
			return nil, nil, fmt.Errorf("index: %s: %w", path, err)
		}
		docs[i] = Document{ID: uint32(i), Tokens: Tokenize(string(data))}
	}
	ix, err := BuildParallel(docs, codec, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, nil, err
	}
	return ix, paths, nil
}

// IndexDirectory indexes a directory tree on the host filesystem.
func IndexDirectory(dir string, codec Codec) (*Index, []string, error) {
	return IndexFS(os.DirFS(dir), codec)
}
