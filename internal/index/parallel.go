package index

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Document is one input to the parallel builder.
type Document struct {
	ID     uint32
	Tokens []string
}

// BuildParallel indexes a document collection across a worker pool using
// the segment-then-merge strategy production indexers use: the collection
// is split into contiguous docID ranges, each worker accumulates an
// in-memory segment for its range, and the segments' posting lists are
// concatenated per term (docID ranges are disjoint and ordered, so the
// merge is a cheap append in segment order) before a single compression
// pass produces the final index.
//
// Documents may arrive in any order; they are sorted by ID first.
// Duplicate IDs are rejected. workers <= 0 selects GOMAXPROCS.
func BuildParallel(docs []Document, codec Codec, workers int) (*Index, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(docs) == 0 {
		return NewBuilder(codec).Build()
	}

	sorted := make([]Document, len(docs))
	copy(sorted, docs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID == sorted[i-1].ID {
			return nil, fmt.Errorf("index: duplicate docID %d", sorted[i].ID)
		}
	}

	// Contiguous ranges keep per-term docIDs ordered across segments.
	numSegs := workers
	if numSegs > len(sorted) {
		numSegs = len(sorted)
	}
	segSize := (len(sorted) + numSegs - 1) / numSegs

	type segment struct {
		postings map[string]*building
		docLens  map[uint32]uint32
		err      error
	}
	segs := make([]segment, numSegs)
	var wg sync.WaitGroup
	for si := 0; si < numSegs; si++ {
		lo := si * segSize
		hi := lo + segSize
		if hi > len(sorted) {
			hi = len(sorted)
		}
		wg.Add(1)
		go func(si, lo, hi int) {
			defer wg.Done()
			seg := segment{
				postings: make(map[string]*building),
				docLens:  make(map[uint32]uint32, hi-lo),
			}
			counts := make(map[string]uint32)
			for _, d := range sorted[lo:hi] {
				seg.docLens[d.ID] = uint32(len(d.Tokens))
				clear(counts)
				for _, tok := range d.Tokens {
					counts[tok]++
				}
				for term, freq := range counts {
					p := seg.postings[term]
					if p == nil {
						p = &building{}
						seg.postings[term] = p
					}
					p.docIDs = append(p.docIDs, d.ID)
					p.freqs = append(p.freqs, freq)
				}
			}
			segs[si] = seg
		}(si, lo, hi)
	}
	wg.Wait()
	for _, s := range segs {
		if s.err != nil {
			return nil, s.err
		}
	}

	// Merge: segments cover ascending disjoint docID ranges, so per-term
	// lists concatenate in segment order.
	b := NewBuilder(codec)
	for _, s := range segs {
		for id, l := range s.docLens {
			b.docLens[id] = l
			if !b.hasDocs || id > b.maxDocID {
				b.maxDocID = id
				b.hasDocs = true
			}
		}
		for term, p := range s.postings {
			dst := b.postings[term]
			if dst == nil {
				dst = &building{}
				b.postings[term] = dst
			}
			dst.docIDs = append(dst.docIDs, p.docIDs...)
			dst.freqs = append(dst.freqs, p.freqs...)
		}
	}
	return b.Build()
}
