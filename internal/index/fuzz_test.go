package index

import (
	"bytes"
	"testing"
)

// FuzzReadIndex hammers the binary deserializer with corrupt inputs: it
// must return an error (or a valid index), never panic or hang. The seed
// corpus includes a genuine serialized index plus truncations and bit
// flips of it.
func FuzzReadIndex(f *testing.F) {
	b := NewBuilder(CodecEF)
	_ = b.AddDocument(0, []string{"alpha", "beta"})
	_ = b.AddDocument(1, []string{"beta", "gamma", "beta"})
	ix, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte("GRIF"))
	flipped := append([]byte(nil), valid...)
	if len(flipped) > 20 {
		flipped[20] ^= 0xff
	}
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		ix, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for garbage
		}
		// If it parsed, basic invariants must hold and lookups must not
		// panic.
		for _, term := range ix.Terms() {
			pl, ok := ix.Lookup(term)
			if !ok || pl.N < 0 {
				t.Fatalf("inconsistent parsed index: term %q", term)
			}
		}
	})
}
