package gpu

import (
	"errors"
	"fmt"
	"time"
)

// ErrBudget is wrapped by budget-aware admissions that reject an op
// whose estimated completion already exceeds the caller's remaining
// deadline budget — refused at the door instead of queued to die.
var ErrBudget = errors.New("gpu: admission exceeds deadline budget")

// IsBudget reports whether err is a deadline-budget admission rejection.
func IsBudget(err error) bool { return errors.Is(err, ErrBudget) }

// AdmitBudget is Admit with a deadline budget: if the compute backlog
// plus the caller's cost estimate already exceeds budget, the query is
// rejected (ErrBudget) without being anchored to the timeline. budget
// <= 0 means unbudgeted — identical to Admit. The idle fast-forward and
// batch flush still run before the check, exactly as Admit would, so a
// rejected admission leaves the runtime in the same state a plain Admit
// on an idle device would have found.
func (rt *DeviceRuntime) AdmitBudget(budget, est time.Duration) (*QueryStream, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.active == 0 {
		if rt.horizon > rt.clock {
			rt.clock = rt.horizon
		}
		if rt.batch != nil {
			rt.batch.flushAll()
		}
	}
	if budget > 0 {
		if backlog := rt.pendingLocked(rt.clock); backlog+est > budget {
			return nil, fmt.Errorf("backlog %v + est %v > budget %v: %w", backlog, est, budget, ErrBudget)
		}
	}
	return rt.admitLocked(rt.clock), nil
}

// AdmitAtBudget is AdmitAt with a deadline budget: if the backlog the
// arrival would face plus the cost estimate already exceeds budget, the
// query is rejected (ErrBudget) with no timeline mutation at all — the
// runtime clock does not advance, so a rejected arrival is invisible to
// later queries. budget <= 0 is identical to AdmitAt.
func (rt *DeviceRuntime) AdmitAtBudget(arrival, budget, est time.Duration) (*QueryStream, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if budget > 0 {
		if backlog := rt.pendingLocked(arrival); backlog+est > budget {
			return nil, fmt.Errorf("backlog %v + est %v > budget %v: %w", backlog, est, budget, ErrBudget)
		}
	}
	if arrival > rt.clock {
		rt.clock = arrival
	}
	return rt.admitLocked(arrival), nil
}

// AdmitOnBudget admits on device i with a deadline budget (see
// DeviceRuntime.AdmitBudget).
func (n *NodeRuntime) AdmitOnBudget(i int, budget, est time.Duration) (*QueryStream, error) {
	return n.devs[i].AdmitBudget(budget, est)
}

// AdmitAtOnBudget admits an arrival on device i with a deadline budget
// (see DeviceRuntime.AdmitAtBudget).
func (n *NodeRuntime) AdmitAtOnBudget(i int, arrival, budget, est time.Duration) (*QueryStream, error) {
	return n.devs[i].AdmitAtBudget(arrival, budget, est)
}
