// Package gpu is a functional simulator of a SIMT co-processor in the
// style of the NVIDIA Tesla K20 the paper evaluates on (§4.1).
//
// The simulator has two halves:
//
//   - A *functional* half that really executes kernels, in parallel, on the
//     host: a kernel is launched over a grid of thread blocks, each block
//     owns shared memory, and execution proceeds in phases separated by
//     barriers (the structured analogue of __syncthreads). Blocks run
//     concurrently on a goroutine worker pool, so partitioning or barrier
//     bugs in the kernels fail for real.
//
//   - A *timing* half that never looks at wall-clock time: kernels report
//     hardware counters (ops, global/shared traffic, divergent ops,
//     uncoalesced bytes) through their thread contexts, and the
//     hwmodel.GPUModel converts those counters plus the launch geometry
//     into a simulated duration, which accumulates on the Stream the
//     launch was issued to.
//
// Device memory is explicit: data reaches the device through H2D, leaves
// through D2H, both charged at modeled PCIe cost, and the 5 GB capacity of
// the K20 is enforced — exactly the overheads the Griffin scheduler weighs
// when it decides where a query operation should run.
package gpu

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"griffin/internal/hwmodel"
)

// ErrOutOfMemory is returned when an allocation would exceed device memory.
var ErrOutOfMemory = errors.New("gpu: out of device memory")

// Device is a simulated GPU.
type Device struct {
	model hwmodel.GPUModel

	mu        sync.Mutex
	allocated int64

	workers int

	// launches counts kernel launches since device creation (telemetry).
	launches atomic.Int64
}

// New returns a device governed by the given timing model. workers sets the
// host parallelism used to execute blocks; 0 means GOMAXPROCS.
func New(model hwmodel.GPUModel, workers int) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Device{model: model, workers: workers}
}

// Model returns the device's timing model.
func (d *Device) Model() *hwmodel.GPUModel { return &d.model }

// Clone returns a fresh device with the same timing model and host
// parallelism but its own memory accounting and telemetry — the sibling
// accelerators of a multi-GPU node (NodeRuntime) are clones of one
// template device.
func (d *Device) Clone() *Device { return New(d.model, d.workers) }

// Allocated returns the currently allocated device memory in bytes.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// Launches returns the number of kernel launches issued so far.
func (d *Device) Launches() int64 { return d.launches.Load() }

// Stream is an in-order queue of device operations; its Elapsed clock
// accumulates the simulated cost of every operation issued to it. Each
// query gets its own stream so per-query latency is the stream's elapsed
// simulated time.
type Stream struct {
	dev     *Device
	elapsed time.Duration
	// fixed accumulates the *fixed* component of every charged operation —
	// launch overhead, DMA setup latency, cudaMalloc overhead — separately
	// from elapsed. It is what a cross-query batching stage can amortize: a
	// work item coalesced into an already-open batch pays these costs once
	// per batch instead of once per op (see DeviceRuntime.EnableBatching).
	fixed time.Duration

	profiling bool
	events    []ProfileEvent
}

// NewStream returns a fresh stream with a zeroed simulated clock.
func (d *Device) NewStream() *Stream { return &Stream{dev: d} }

// Elapsed returns the simulated time consumed by operations on the stream.
func (s *Stream) Elapsed() time.Duration { return s.elapsed }

// AddTime advances the stream clock by d; used by callers to account
// host-side work that interleaves with device operations.
func (s *Stream) AddTime(d time.Duration) { s.elapsed += d }

// Buffer is a device-memory allocation. Data holds the real payload for
// functional execution; Bytes is the simulated footprint used for memory
// accounting and transfer cost.
type Buffer struct {
	dev   *Device
	Bytes int64
	Data  any
	freed bool
}

// Alloc reserves bytes of device memory on the stream, charging modeled
// allocation time. The payload starts nil; kernels or copies fill it.
func (s *Stream) Alloc(bytes int64) (*Buffer, error) {
	d := s.dev
	d.mu.Lock()
	if d.allocated+bytes > d.model.MemoryBytes {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: %d + %d > %d", ErrOutOfMemory, d.allocated, bytes, d.model.MemoryBytes)
	}
	d.allocated += bytes
	d.mu.Unlock()
	took := d.model.AllocTime(bytes)
	s.record("alloc", "", bytes, s.elapsed, took)
	s.elapsed += took
	s.fixed += d.model.AllocOverhead
	return &Buffer{dev: d, Bytes: bytes}, nil
}

// H2D copies host data to a fresh device buffer, charging allocation plus
// PCIe transfer for bytes.
func (s *Stream) H2D(data any, bytes int64) (*Buffer, error) {
	b, err := s.Alloc(bytes)
	if err != nil {
		return nil, err
	}
	b.Data = data
	took := s.dev.model.TransferTime(bytes)
	s.record("h2d", "", bytes, s.elapsed, took)
	s.elapsed += took
	s.fixed += s.dev.model.PCIeLatency
	return b, nil
}

// D2H copies a device buffer's payload back to the host, charging PCIe
// transfer for bytes (callers pass the actually-transferred size, which may
// be smaller than the allocation, e.g. a compacted result).
func (s *Stream) D2H(b *Buffer, bytes int64) any {
	took := s.dev.model.TransferTime(bytes)
	s.record("d2h", "", bytes, s.elapsed, took)
	s.elapsed += took
	s.fixed += s.dev.model.PCIeLatency
	return b.Data
}

// PeerIn copies data from a sibling device of the same node into a fresh
// buffer on this stream's device, charging allocation plus peer-
// interconnect transfer (hwmodel.GPUModel.PeerTransferTime) instead of
// the host PCIe path — the priced alternative to re-uploading a list that
// is already resident on another device. The source device's engines are
// not occupied: the model charges the transfer to the destination query's
// timeline only, which keeps per-device timelines independent (see
// docs/simulator.md).
func (s *Stream) PeerIn(data any, bytes int64) (*Buffer, error) {
	b, err := s.Alloc(bytes)
	if err != nil {
		return nil, err
	}
	b.Data = data
	took := s.dev.model.PeerTransferTime(bytes)
	s.record("p2p", "", bytes, s.elapsed, took)
	s.elapsed += took
	s.fixed += s.dev.model.PeerLatency
	return b, nil
}

// Free releases the buffer's device memory. Freeing twice is a no-op.
func (b *Buffer) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.dev.mu.Lock()
	b.dev.allocated -= b.Bytes
	b.dev.mu.Unlock()
	b.Data = nil
}

// Kernel describes one launch: a grid of Grid blocks of Block threads,
// executing Phases in order with an implicit device-wide barrier between
// consecutive phases. MakeShared, if non-nil, allocates each block's
// shared-memory state before phase 0; SharedBytes is its modeled size.
type Kernel struct {
	Name        string
	Grid        int
	Block       int
	SharedBytes int
	MakeShared  func(block int) any
	Phases      []Phase
}

// Phase is one barrier-delimited stage of a kernel, invoked once per
// thread. Threads within a phase must not communicate; cross-thread
// communication happens across the barrier between phases — the structured
// discipline that makes the functional execution race-free by construction
// when kernels follow it (and detectably racy under -race when they do
// not, since blocks and phase-thread chunks really run concurrently).
type Phase func(c *Ctx)

// Ctx is the per-thread execution context, carrying thread coordinates and
// the counter sinks.
type Ctx struct {
	// Block and Thread are the block index and intra-block thread index.
	Block, Thread int
	// Grid and BlockDim mirror the launch geometry.
	Grid, BlockDim int
	// Shared is the block's shared-memory state (MakeShared's result).
	Shared any

	stats *blockStats
}

// GlobalID returns the flattened global thread id.
func (c *Ctx) GlobalID() int { return c.Block*c.BlockDim + c.Thread }

// blockStats accumulates counters for one block without atomics; merged
// into the launch totals after the block finishes.
type blockStats struct {
	ops, globalRead, globalWrite, shared, divergent, dependent, uncoalesced int64
}

// Op records n simple arithmetic/logic operations.
func (c *Ctx) Op(n int) { c.stats.ops += int64(n) }

// DivergentOp records n operations executed under warp divergence (charged
// with warp serialization by the model).
func (c *Ctx) DivergentOp(n int) { c.stats.divergent += int64(n) }

// DependentOp records n operations in a single-lane dependent chain (a
// pointer chase or serial scan): charged with full warp serialization plus
// a latency-stall multiplier, the cost that punishes direct ports of
// sequential CPU algorithms.
func (c *Ctx) DependentOp(n int) { c.stats.dependent += int64(n) }

// GlobalRead records n bytes of coalesced global-memory reads.
func (c *Ctx) GlobalRead(n int) { c.stats.globalRead += int64(n) }

// GlobalWrite records n bytes of coalesced global-memory writes.
func (c *Ctx) GlobalWrite(n int) { c.stats.globalWrite += int64(n) }

// UncoalescedRead records n bytes of scattered global reads (counted in
// both the global and uncoalesced totals).
func (c *Ctx) UncoalescedRead(n int) {
	c.stats.globalRead += int64(n)
	c.stats.uncoalesced += int64(n)
}

// UncoalescedWrite records n bytes of scattered global writes (counted in
// both the global and uncoalesced totals).
func (c *Ctx) UncoalescedWrite(n int) {
	c.stats.globalWrite += int64(n)
	c.stats.uncoalesced += int64(n)
}

// SharedAccess records n bytes of shared-memory traffic.
func (c *Ctx) SharedAccess(n int) { c.stats.shared += int64(n) }

// Launch executes the kernel functionally and charges its modeled time to
// the stream. It returns the counters for inspection by tests and the
// experiments harness.
func (s *Stream) Launch(k *Kernel) *hwmodel.LaunchStats {
	d := s.dev
	d.launches.Add(1)

	total := &hwmodel.LaunchStats{
		Blocks:          k.Grid,
		ThreadsPerBlock: k.Block,
		Phases:          len(k.Phases),
	}

	shared := make([]any, k.Grid)
	if k.MakeShared != nil {
		for b := range shared {
			shared[b] = k.MakeShared(b)
		}
	}

	var mu sync.Mutex
	for _, phase := range k.Phases {
		// Device-wide barrier between phases: complete the parallel-for
		// over all blocks before starting the next phase.
		parallelFor(k.Grid, d.workers, func(b int) {
			st := &blockStats{}
			ctx := Ctx{Block: b, Grid: k.Grid, BlockDim: k.Block, Shared: shared[b], stats: st}
			for t := 0; t < k.Block; t++ {
				ctx.Thread = t
				phase(&ctx)
			}
			mu.Lock()
			total.Add(&hwmodel.LaunchStats{
				Ops:              st.ops,
				GlobalReadBytes:  st.globalRead,
				GlobalWriteBytes: st.globalWrite,
				SharedBytes:      st.shared,
				DivergentOps:     st.divergent,
				DependentOps:     st.dependent,
				UncoalescedBytes: st.uncoalesced,
			})
			mu.Unlock()
		})
	}

	took := d.model.KernelTime(total)
	s.record("launch", k.Name, 0, s.elapsed, took)
	s.elapsed += took
	s.fixed += d.model.LaunchOverhead
	return total
}

// parallelFor runs f(0..n-1) across at most workers goroutines, chunked to
// keep scheduling overhead low for large grids.
func parallelFor(n, workers int, f func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}

// GridFor returns the number of blocks needed to cover n threads at the
// given block size.
func GridFor(n, block int) int {
	if n <= 0 {
		return 1
	}
	return (n + block - 1) / block
}
