package gpu

import (
	"sync/atomic"
	"testing"

	"griffin/internal/hwmodel"
)

// TestLaunchDeterministicAcrossWorkerCounts verifies the core simulator
// property: the functional result, the hardware counters, and therefore
// the simulated time of a launch are identical whether blocks execute on
// 1 host worker or many. Without this, simulated latencies would depend
// on the machine running the simulation.
func TestLaunchDeterministicAcrossWorkerCounts(t *testing.T) {
	model := hwmodel.DefaultGPU()
	const grid, block = 200, 128
	n := grid * block

	run := func(workers int) (*hwmodel.LaunchStats, []int64, int64) {
		dev := New(model, workers)
		s := dev.NewStream()
		out := make([]int64, n)
		st := s.Launch(&Kernel{
			Name: "det", Grid: grid, Block: block,
			MakeShared: func(b int) any { return make([]int64, block) },
			Phases: []Phase{
				func(c *Ctx) {
					sh := c.Shared.([]int64)
					sh[c.Thread] = int64(c.GlobalID() * 3)
					c.Op(2)
					c.GlobalRead(4)
				},
				func(c *Ctx) {
					sh := c.Shared.([]int64)
					out[c.GlobalID()] = sh[c.Thread] + 1
					c.GlobalWrite(8)
					c.SharedAccess(8)
					if c.Thread%2 == 0 {
						c.DivergentOp(1)
					}
				},
			},
		})
		return st, out, int64(s.Elapsed())
	}

	st1, out1, t1 := run(1)
	st8, out8, t8 := run(8)
	if *st1 != *st8 {
		t.Fatalf("stats differ by worker count:\n1: %+v\n8: %+v", st1, st8)
	}
	if t1 != t8 {
		t.Fatalf("simulated time differs: %d vs %d", t1, t8)
	}
	for i := range out1 {
		if out1[i] != out8[i] {
			t.Fatalf("functional output differs at %d", i)
		}
	}
}

// TestBlocksRunConcurrently confirms blocks of one phase really execute in
// parallel on the host (the functional half is a true parallel executor,
// not a loop): with enough workers, at least two blocks must be in flight
// at once.
func TestBlocksRunConcurrently(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 8)
	s := dev.NewStream()
	var inFlight, peak atomic.Int32
	s.Launch(&Kernel{
		Name: "conc", Grid: 64, Block: 64,
		Phases: []Phase{func(c *Ctx) {
			if c.Thread != 0 {
				return
			}
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			// Spin briefly so overlap is observable.
			for i := 0; i < 10000; i++ {
				_ = i * i
			}
			inFlight.Add(-1)
		}},
	})
	if peak.Load() < 2 {
		t.Skip("no observed overlap (single-core host?)")
	}
}
