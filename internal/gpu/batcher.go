// Cross-query batching: amortizing fixed per-op costs across queries.
//
// Every device op pays fixed costs — kernel launch overhead, DMA setup
// latency, cudaMalloc overhead — that do not shrink with the op's size.
// Under load those costs repeat for every query on every shard, which is
// why saturated throughput scales sublinearly (BENCH_PR3/PR6). Real GPU
// retrieval systems answer with cross-query batching: compatible ops from
// concurrently queued queries (same engine class, same kernel family) are
// packed into one combined launch / one DMA program, so the fixed cost is
// paid once per batch and each additional member pays only a marginal
// coordination cost (hwmodel.GPUModel.BatchMemberOverhead).
//
// The batcher is the stage between admission and lane submit that models
// exactly that. A batch opens when a keyed work item (QueryStream.SubmitOp)
// finds no open batch for its (engine class, batch key) it can join; it
// stays open for a bounded coalescing window measured from the leader's
// ready position on the global device timeline, and closes early when it
// reaches the configured size. Followers joining an open batch are rebated
// the fixed component of their charged time (minus the member overhead) —
// the timeline-visible effect of riding an already-paid launch. Results
// are never touched: batching moves simulated time, not bytes, so
// per-query answers stay bit-identical to unbatched execution.
//
// Batching is strictly *cross-query*: a batch holds at most one member per
// query stream. One query's own same-family ops are already modeled as
// back-to-back submissions on its private stream — letting them coalesce
// with each other would shave fixed costs off an isolated query and make
// contention-free latency depend on the batching flag. Instead a stream's
// second op of a family opens a parallel batch for the same key, which
// later queries' second ops join: with k overlapping queries of m uploads
// each, the stage forms m batches of ~k members, and a lone query forms m
// batches of one (rebate-free, timeline identical to unbatched).
package gpu

import "time"

// DefaultBatchMax is the batch size cap when BatchConfig.Max is zero: 16
// members packs well below the point where a combined grid would change
// occupancy behavior, and matches the admission fan-in a saturated lane
// sees within one window at calibrated loads.
const DefaultBatchMax = 16

// BatchConfig parameterizes a device runtime's cross-query batching
// stage. The zero value disables batching entirely (the pre-batching
// submission path, byte-identical timelines).
type BatchConfig struct {
	// Window is the coalescing window: a keyed work item joins an open
	// batch only while its ready position on the global timeline is within
	// Window of the batch leader's. <= 0 disables batching.
	Window time.Duration
	// Max closes a batch when it reaches this many members (flush-on-size);
	// <= 0 means DefaultBatchMax.
	Max int
}

// Enabled reports whether the config turns batching on.
func (c BatchConfig) Enabled() bool { return c.Window > 0 }

// Batched describes one work item's membership in a coalesced batch, as
// returned by QueryStream.SubmitOp. The zero value (ID 0) means the item
// was not batched: unkeyed submission, batching disabled, or the item
// failed before running.
type Batched struct {
	// ID is the batch's device-unique identifier (1-based).
	ID int64
	// Seq is the item's 1-based ordinal within the batch; 1 is the leader,
	// which pays the batch's full fixed costs.
	Seq int
	// Saved is the fixed-cost rebate this item received (zero for the
	// leader).
	Saved time.Duration
}

// BatchStats is a telemetry snapshot of one device's batching stage.
type BatchStats struct {
	// Batches counts opened batches; Members counts work items admitted
	// into them (leaders included), so Members/Batches is the mean batch
	// size.
	Batches int64
	Members int64
	// Saved is the total fixed-cost rebate granted to followers — simulated
	// device time the coalesced launches did not spend.
	Saved time.Duration
	// WindowFlushes counts batches retired because their coalescing window
	// expired (including batches still open when the device drained);
	// SizeFlushes counts batches closed at Max members.
	WindowFlushes int64
	SizeFlushes   int64
}

// Add accumulates o into s (node-level aggregation across devices).
func (s *BatchStats) Add(o BatchStats) {
	s.Batches += o.Batches
	s.Members += o.Members
	s.Saved += o.Saved
	s.WindowFlushes += o.WindowFlushes
	s.SizeFlushes += o.SizeFlushes
}

// batchKey identifies the compatibility class of coalescible work: same
// engine, same op family (the exec layer keys intersects by algorithm so
// MergePath and binary-skip kernels never share a grid).
type batchKey struct {
	class EngineClass
	key   string
}

// openBatch is one batch still accepting members. All access is under the
// owning runtime's lock.
type openBatch struct {
	id     int64
	anchor time.Duration // leader's ready position; the window runs from here
	n      int
	fixed  time.Duration // latest member's fixed cost: the saving estimate for the next joiner
	// queries records the member streams (QueryStream ids): a batch holds
	// at most one op per query, keeping batching strictly cross-query.
	queries map[int64]struct{}
}

// batcher is a device runtime's batching stage. It is owned by a
// DeviceRuntime and guarded by that runtime's mutex. Each key maps to the
// open batches for that family in opening order; parallel batches exist
// exactly when one query has submitted several ops of the family (its
// i-th op leads or joins the i-th batch).
type batcher struct {
	cfg    BatchConfig
	open   map[batchKey][]*openBatch
	nextID int64
	stats  BatchStats
}

func newBatcher(cfg BatchConfig) *batcher {
	if cfg.Max <= 0 {
		cfg.Max = DefaultBatchMax
	}
	return &batcher{cfg: cfg, open: make(map[batchKey][]*openBatch)}
}

// admit places one completed work item into the batching stage: it joins
// the oldest open batch for (class, key) that is unexpired at ready, has
// room, and does not already carry an op of the same query — otherwise it
// opens (and leads) a new batch, with expired predecessors retired along
// the way. It returns the item's membership and the rebate to credit back
// to the submitting stream. query is the submitting stream's id; fixed is
// the fixed-cost component the item just charged, overhead the per-member
// marginal cost, took the item's total charged time (the rebate ceiling).
func (b *batcher) admit(class EngineClass, key string, query int64, ready, fixed, overhead, took time.Duration) (Batched, time.Duration) {
	k := batchKey{class: class, key: key}
	live := b.open[k][:0]
	var ob *openBatch
	for _, o := range b.open[k] {
		if ready >= o.anchor+b.cfg.Window {
			b.stats.WindowFlushes++
			continue
		}
		live = append(live, o)
		if ob == nil {
			if _, dup := o.queries[query]; !dup {
				ob = o
			}
		}
	}
	if ob == nil {
		b.nextID++
		ob = &openBatch{
			id: b.nextID, anchor: ready, n: 1, fixed: fixed,
			queries: map[int64]struct{}{query: {}},
		}
		b.open[k] = append(live, ob)
		b.stats.Batches++
		b.stats.Members++
		return Batched{ID: ob.id, Seq: 1}, 0
	}
	ob.n++
	ob.fixed = fixed
	ob.queries[query] = struct{}{}
	b.stats.Members++
	rebate := fixed - overhead
	if rebate < 0 {
		rebate = 0
	}
	if rebate > took {
		rebate = took
	}
	b.stats.Saved += rebate
	m := Batched{ID: ob.id, Seq: ob.n, Saved: rebate}
	if ob.n >= b.cfg.Max {
		b.stats.SizeFlushes++
		out := live[:0]
		for _, o := range live {
			if o != ob {
				out = append(out, o)
			}
		}
		live = out
	}
	if len(live) == 0 {
		delete(b.open, k)
	} else {
		b.open[k] = live
	}
	return m, rebate
}

// flushAll retires every open batch — called when the device drains and a
// fresh untimed admission fast-forwards the clock: queries separated by a
// drained device never overlapped, so their ops must not share a launch.
func (b *batcher) flushAll() {
	for k, list := range b.open {
		b.stats.WindowFlushes += int64(len(list))
		delete(b.open, k)
	}
}

// saving estimates the rebate a compute op arriving at the given timeline
// point could collect: the best open, unexpired, non-full compute batch's
// latest fixed cost minus the member overhead. The batch-aware placement
// signal (NodeRuntime.BatchSavings). The arriving query is fresh, so no
// one-op-per-query exclusion applies.
func (b *batcher) saving(at, overhead time.Duration) time.Duration {
	var best time.Duration
	for k, list := range b.open {
		if k.class != ComputeEngine {
			continue
		}
		for _, ob := range list {
			if ob.n >= b.cfg.Max || at >= ob.anchor+b.cfg.Window {
				continue
			}
			if s := ob.fixed - overhead; s > best {
				best = s
			}
		}
	}
	return best
}

// EnableBatching installs (or, with a disabled config, removes) the
// runtime's cross-query batching stage. Like SetSubmitHook, configure it
// before serving traffic: swapping it mid-workload makes the modeled
// timeline depend on the swap's wall-clock timing.
func (rt *DeviceRuntime) EnableBatching(cfg BatchConfig) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !cfg.Enabled() {
		rt.batch = nil
		return
	}
	rt.batch = newBatcher(cfg)
}

// BatchStats returns a snapshot of the batching stage's telemetry (zero
// value when batching is disabled).
func (rt *DeviceRuntime) BatchStats() BatchStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.batch == nil {
		return BatchStats{}
	}
	return rt.batch.stats
}

// BatchSaving reports the fixed-cost rebate a compute op submitted by a
// freshly admitted query could expect from the device's open batches —
// zero when batching is disabled or the device has drained (a fresh
// admission would flush every open batch).
func (rt *DeviceRuntime) BatchSaving() time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.batch == nil || rt.active == 0 {
		return 0
	}
	return rt.batch.saving(rt.clock, rt.dev.model.BatchMemberOverhead)
}

// BatchSavingAt is BatchSaving for a query arriving at an explicit point
// on the global timeline (the AdmitAt placement path): open batches are
// judged against the arrival, and a drained device does not forfeit them
// (timed admissions never flush).
func (rt *DeviceRuntime) BatchSavingAt(arrival time.Duration) time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.batch == nil {
		return 0
	}
	return rt.batch.saving(arrival, rt.dev.model.BatchMemberOverhead)
}
