package gpu

import (
	"testing"
	"time"

	"griffin/internal/hwmodel"
)

// submitCompute pushes one fixed-cost kernel through the handle to build
// compute-lane backlog.
func submitCompute(t *testing.T, h *QueryStream) {
	t.Helper()
	if err := h.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("budget-work"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAdmitBudgetUnbudgetedMatchesAdmit(t *testing.T) {
	rt := NewRuntime(New(hwmodel.DefaultGPU(), 0), 1)
	h, err := rt.AdmitBudget(0, time.Hour)
	if err != nil || h == nil {
		t.Fatalf("unbudgeted admit: %v", err)
	}
	h.Release()
	// Negative budget is also "no budget".
	h, err = rt.AdmitBudget(-time.Second, time.Hour)
	if err != nil || h == nil {
		t.Fatalf("negative budget admit: %v", err)
	}
	h.Release()
}

func TestAdmitAtBudgetRejectsWithoutTimelineMutation(t *testing.T) {
	rt := NewRuntime(New(hwmodel.DefaultGPU(), 0), 1)
	// Build real backlog on the single compute lane.
	for i := 0; i < 4; i++ {
		h := rt.AdmitAt(0)
		submitCompute(t, h)
		h.Release()
	}
	backlog := rt.PendingAt(time.Microsecond)
	if backlog <= 0 {
		t.Fatal("no backlog built")
	}

	clockBefore := rt.Stats().Horizon
	admittedBefore := rt.Stats().Admitted

	// Budget smaller than backlog alone: rejected.
	h, err := rt.AdmitAtBudget(time.Microsecond, backlog/2, 0)
	if !IsBudget(err) || h != nil {
		t.Fatalf("want budget rejection, got %v", err)
	}
	// Budget covers backlog but not backlog+est: rejected.
	if _, err := rt.AdmitAtBudget(time.Microsecond, backlog+time.Nanosecond, time.Millisecond); !IsBudget(err) {
		t.Fatalf("want budget rejection with est, got %v", err)
	}
	// Rejections leave no trace: same admitted count, same horizon, and a
	// later arrival sees the same backlog.
	if got := rt.Stats().Admitted; got != admittedBefore {
		t.Errorf("rejection consumed an admission: %d != %d", got, admittedBefore)
	}
	if got := rt.Stats().Horizon; got != clockBefore {
		t.Errorf("rejection moved the horizon: %v != %v", got, clockBefore)
	}
	if got := rt.PendingAt(time.Microsecond); got != backlog {
		t.Errorf("rejection changed backlog: %v != %v", got, backlog)
	}

	// Ample budget: admitted, identical to AdmitAt.
	h, err = rt.AdmitAtBudget(time.Microsecond, backlog+10*time.Millisecond, time.Millisecond)
	if err != nil || h == nil {
		t.Fatalf("ample budget rejected: %v", err)
	}
	h.Release()
}

func TestAdmitBudgetIdleFastForwardClearsBacklog(t *testing.T) {
	rt := NewRuntime(New(hwmodel.DefaultGPU(), 0), 1)
	// Accumulate work, then drain: the untimed path fast-forwards past
	// the horizon, so an idle device never rejects.
	h := rt.Admit()
	submitCompute(t, h)
	h.Release()
	got, err := rt.AdmitBudget(time.Nanosecond, 0)
	if err != nil || got == nil {
		t.Fatalf("idle device rejected a tiny budget: %v", err)
	}
	got.Release()
}

func TestNodeBudgetAdmission(t *testing.T) {
	n := NewNode(New(hwmodel.DefaultGPU(), 0), 2, 1)
	// Load device 0 only.
	for i := 0; i < 4; i++ {
		h := n.AdmitAtOn(0, 0)
		submitCompute(t, h)
		h.Release()
	}
	backlog := n.BacklogsAt(time.Microsecond)
	if backlog[0] <= 0 || backlog[1] != 0 {
		t.Fatalf("backlogs: %v", backlog)
	}
	if _, err := n.AdmitAtOnBudget(0, time.Microsecond, backlog[0]/2, 0); !IsBudget(err) {
		t.Fatalf("loaded device: want rejection, got %v", err)
	}
	h, err := n.AdmitAtOnBudget(1, time.Microsecond, backlog[0]/2, 0)
	if err != nil || h == nil {
		t.Fatalf("idle device rejected: %v", err)
	}
	h.Release()
	if h2, err := n.AdmitOnBudget(1, time.Hour, 0); err != nil {
		t.Fatalf("AdmitOnBudget: %v", err)
	} else {
		h2.Release()
	}
}
