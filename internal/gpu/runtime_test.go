package gpu

import (
	"sync"
	"testing"
	"time"

	"griffin/internal/hwmodel"
)

// testKernel is a small fixed-cost kernel for timeline tests.
func testKernel(name string) *Kernel {
	return &Kernel{Name: name, Grid: 4, Block: 64,
		Phases: []Phase{func(c *Ctx) { c.Op(16); c.GlobalRead(64) }}}
}

// runQueryOps submits a representative op sequence (upload, kernel,
// download) through the handle and returns the stream's final clock.
func runQueryOps(t *testing.T, h *QueryStream) time.Duration {
	t.Helper()
	var buf *Buffer
	err := h.Submit(CopyEngine, func(s *Stream) error {
		b, err := s.H2D(make([]uint32, 1024), 4096)
		buf = b
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("work"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit(CopyOutEngine, func(s *Stream) error {
		s.D2H(buf, 4096)
		buf.Free()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return h.Stream().Elapsed()
}

// A query running alone through the runtime must reproduce the private-
// stream clock exactly: no queueing delay, bit-identical elapsed time.
func TestRuntimeContentionFreeParity(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)

	// Reference: the same ops on a raw private stream.
	ref := dev.NewStream()
	b, err := ref.H2D(make([]uint32, 1024), 4096)
	if err != nil {
		t.Fatal(err)
	}
	ref.Launch(testKernel("work"))
	ref.D2H(b, 4096)
	b.Free()

	// Sequential queries through the runtime: each sees an idle device.
	for i := 0; i < 3; i++ {
		h := rt.Admit()
		got := runQueryOps(t, h)
		if got != ref.Elapsed() {
			t.Fatalf("query %d: runtime clock %v != private stream %v", i, got, ref.Elapsed())
		}
		if h.Waited() != 0 {
			t.Fatalf("query %d: idle device charged %v queueing delay", i, h.Waited())
		}
		h.Release()
	}
	if rt.PendingTime() != 0 {
		t.Fatalf("idle runtime reports backlog %v", rt.PendingTime())
	}
	st := rt.Stats()
	if st.Admitted != 3 || st.Active != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v out of range", st.Utilization)
	}
}

// Two queries admitted into the same epoch contend: the later submission
// on a busy lane is charged queueing delay equal to the overlap.
func TestRuntimeChargesQueueingDelay(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)

	h1 := rt.Admit()
	h2 := rt.Admit() // same epoch: both anchored at the idle clock
	defer h1.Release()
	defer h2.Release()

	if err := h1.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("first"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	service1 := h1.Stream().Elapsed()

	// h2's kernel becomes ready at its anchor (same as h1's) but the
	// single compute lane is busy until service1.
	if err := h2.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("second"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h2.Waited() != service1 {
		t.Fatalf("h2 waited %v, want %v (h1's service time)", h2.Waited(), service1)
	}
	if h2.Stream().Elapsed() <= service1 {
		t.Fatalf("h2 clock %v does not include the wait", h2.Stream().Elapsed())
	}
	if rt.Stats().Waited != service1 {
		t.Fatalf("runtime waited %v, want %v", rt.Stats().Waited, service1)
	}
}

// Copy and compute engines queue independently: a transfer does not wait
// behind another query's kernel.
func TestRuntimeEnginesQueueIndependently(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)

	h1 := rt.Admit()
	h2 := rt.Admit()
	defer h1.Release()
	defer h2.Release()

	if err := h1.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("kernels"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := h2.Submit(CopyEngine, func(s *Stream) error {
		b, err := s.H2D(make([]uint32, 256), 1024)
		if err != nil {
			return err
		}
		b.Free()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h2.Waited() != 0 {
		t.Fatalf("copy waited %v behind an unrelated kernel", h2.Waited())
	}
}

// Explicit arrival times: a query arriving after the previous one's work
// has drained sees no delay; one arriving mid-service queues for the
// remainder.
func TestRuntimeAdmitAt(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)

	h1 := rt.AdmitAt(0)
	if err := h1.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("a"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	end1 := h1.Stream().Elapsed()
	h1.Release()

	// Arrive halfway through h1's service: wait for the remainder.
	mid := end1 / 2
	h2 := rt.AdmitAt(mid)
	if err := h2.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("b"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := end1 - mid; h2.Waited() != want {
		t.Fatalf("mid-service arrival waited %v, want %v", h2.Waited(), want)
	}
	end2 := mid + h2.Stream().Elapsed()
	h2.Release()

	// Arrive after everything drained: no delay.
	h3 := rt.AdmitAt(end2 + time.Millisecond)
	if err := h3.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("c"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h3.Waited() != 0 {
		t.Fatalf("post-drain arrival waited %v", h3.Waited())
	}
	h3.Release()
}

// More compute lanes admit more concurrent kernels: total queueing delay
// is monotone non-increasing in the lane count for a fixed offered
// sequence of simultaneous queries.
func TestRuntimeMoreStreamsLessWaiting(t *testing.T) {
	run := func(streams int) time.Duration {
		dev := New(hwmodel.DefaultGPU(), 0)
		rt := NewRuntime(dev, streams)
		handles := make([]*QueryStream, 6)
		for i := range handles {
			handles[i] = rt.Admit()
		}
		for _, h := range handles {
			if err := h.Submit(ComputeEngine, func(s *Stream) error {
				s.Launch(testKernel("k"))
				return nil
			}); err != nil {
				panic(err)
			}
		}
		for _, h := range handles {
			h.Release()
		}
		return rt.Stats().Waited
	}
	w1, w2, w4 := run(1), run(2), run(4)
	if w1 < w2 || w2 < w4 {
		t.Fatalf("waiting not monotone in streams: 1->%v 2->%v 4->%v", w1, w2, w4)
	}
	if w1 == 0 {
		t.Fatal("single lane with 6 simultaneous kernels shows no waiting")
	}
}

// Satellite: under many concurrent queries sharing the runtime (run with
// -race in CI), every per-query stream timeline must stay well-formed —
// events in monotone non-overlapping order accounting for the whole
// clock — and the runtime's lane occupancy intervals must never overlap
// within a lane.
func TestRuntimeConcurrentTimelinesWellFormed(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 2)
	rt := NewRuntime(dev, 2)
	rt.EnableProfiling()

	const goroutines = 8
	const perG = 5
	events := make([][]ProfileEvent, goroutines*perG)
	clocks := make([]time.Duration, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < perG; q++ {
				h := rt.Admit()
				h.Stream().EnableProfiling()
				runQueryOps(t, h)
				idx := g*perG + q
				events[idx] = h.Stream().Profile()
				clocks[idx] = h.Stream().Elapsed()
				h.Release()
			}
		}(g)
	}
	wg.Wait()

	for qi, evs := range events {
		if len(evs) == 0 {
			t.Fatalf("query %d recorded no events", qi)
		}
		var prevEnd time.Duration
		for i, e := range evs {
			if e.Start < prevEnd {
				t.Fatalf("query %d event %d (%s) starts at %v before predecessor end %v",
					qi, i, e.Kind, e.Start, prevEnd)
			}
			if e.Took < 0 {
				t.Fatalf("query %d event %d negative duration", qi, i)
			}
			prevEnd = e.Start + e.Took
		}
		if prevEnd != clocks[qi] {
			t.Fatalf("query %d timeline ends at %v but stream clock is %v", qi, prevEnd, clocks[qi])
		}
	}

	checkLane := func(name string, spans []LaneSpan) {
		var prevEnd time.Duration
		for i, sp := range spans {
			if sp.Start < prevEnd {
				t.Fatalf("%s span %d [%v,%v) overlaps predecessor ending %v",
					name, i, sp.Start, sp.End, prevEnd)
			}
			if sp.End < sp.Start {
				t.Fatalf("%s span %d inverted", name, i)
			}
			prevEnd = sp.End
		}
	}
	var kernelSpans int
	for li, spans := range rt.ComputeSpans() {
		kernelSpans += len(spans)
		checkLane("compute lane", spans)
		_ = li
	}
	for _, spans := range rt.CopySpans() {
		checkLane("copy engine", spans)
	}
	if kernelSpans == 0 {
		t.Fatal("no compute spans recorded")
	}
	if rt.Stats().Utilization <= 0 {
		t.Fatal("zero utilization after concurrent load")
	}
}
