package gpu

import (
	"fmt"
	"strings"
	"time"
)

// ProfileEvent records one operation on a profiled stream.
type ProfileEvent struct {
	// Kind is "launch", "h2d", "d2h", "p2p", "alloc", or "wait".
	Kind string
	// Name is the kernel name for launches, empty otherwise.
	Name string
	// Bytes is the transfer/allocation size (0 for launches).
	Bytes int64
	// Start and Took place the operation on the stream's simulated
	// timeline.
	Start time.Duration
	Took  time.Duration
}

// EnableProfiling turns on per-operation event recording for the stream,
// the nvprof-style visibility used to understand where a query's
// simulated time goes. Recording costs nothing on the simulated clock.
func (s *Stream) EnableProfiling() { s.profiling = true }

// Profile returns the recorded events (nil unless EnableProfiling was
// called before the operations of interest).
func (s *Stream) Profile() []ProfileEvent { return s.events }

// ProfileReport renders the recorded events as an aligned text timeline.
func (s *Stream) ProfileReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-26s %12s %12s %10s\n", "kind", "name", "start(us)", "took(us)", "bytes")
	for _, e := range s.events {
		fmt.Fprintf(&sb, "%-10s %-26s %12.1f %12.1f %10d\n",
			e.Kind, e.Name,
			float64(e.Start)/float64(time.Microsecond),
			float64(e.Took)/float64(time.Microsecond),
			e.Bytes)
	}
	return sb.String()
}

// record appends an event if profiling is enabled; called by the Stream
// operations with the pre-operation clock and the charged duration.
func (s *Stream) record(kind, name string, bytes int64, start, took time.Duration) {
	if !s.profiling {
		return
	}
	s.events = append(s.events, ProfileEvent{
		Kind: kind, Name: name, Bytes: bytes, Start: start, Took: took,
	})
}
