// Node runtime: a serving node with several accelerators.
//
// The paper's prototype (and DeviceRuntime, which models it under load)
// assumes one GPU per node; real serving nodes carry 4-8. NodeRuntime is
// the multi-device generalization: it owns N DeviceRuntimes — each a full
// device with its own compute lanes, split copy engines, and an
// *independent* global timeline — plus the node's inter-device
// interconnect, priced by hwmodel.GPUModel.PeerTransferTime. Following
// the MGSim/MGMark design point, the interconnect is a first-class
// modeled resource: moving data between devices (Stream.PeerIn) costs
// peer latency + bandwidth, distinct from the host PCIe path, so "use the
// copy on the sibling device" versus "re-upload from the host" is a
// priced scheduling decision rather than a free one.
//
// Placement — which device a query (or op) lands on — deliberately lives
// outside this package: sched.DevicePlacement policies read the per-
// device backlogs (Backlogs) and decide; the node only admits where it is
// told. A single-device node is bit-identical to a bare DeviceRuntime:
// every admission routes to device 0 and no peer path ever exists.
package gpu

import (
	"time"

	"griffin/internal/hwmodel"
)

// NodeRuntime multiplexes N simulated devices of one serving node. All
// methods are safe for concurrent use; per-device state is guarded by
// each DeviceRuntime's own lock, so queries on different devices never
// contend on a shared timeline — exactly the property that makes added
// devices add drain capacity.
type NodeRuntime struct {
	devs []*DeviceRuntime
}

// NewNode builds a node of n devices with the given compute-lane count
// each. Device 0 is dev itself — so a single-device node preserves the
// caller's device identity (memory accounting, telemetry) bit for bit —
// and devices 1..n-1 are fresh clones of it (same timing model, private
// memory). n <= 1 means 1.
func NewNode(dev *Device, n, streams int) *NodeRuntime {
	if n <= 1 {
		n = 1
	}
	node := &NodeRuntime{devs: make([]*DeviceRuntime, n)}
	for i := 0; i < n; i++ {
		d := dev
		if i > 0 {
			d = dev.Clone()
		}
		node.devs[i] = NewRuntime(d, streams)
		node.devs[i].index = i
	}
	return node
}

// WrapNode adopts existing runtimes as a node's devices (device i is
// rts[i]); the compatibility path for callers that built a DeviceRuntime
// themselves (core.Config.Runtime). Runtimes are re-indexed in wrap
// order.
func WrapNode(rts ...*DeviceRuntime) *NodeRuntime {
	node := &NodeRuntime{devs: make([]*DeviceRuntime, len(rts))}
	for i, rt := range rts {
		rt.index = i
		node.devs[i] = rt
	}
	return node
}

// Devices returns the node's device count.
func (n *NodeRuntime) Devices() int { return len(n.devs) }

// Runtime returns device i's runtime.
func (n *NodeRuntime) Runtime(i int) *DeviceRuntime { return n.devs[i] }

// Model returns the node's device timing model (shared by every device),
// which carries the peer-interconnect constants placement policies price
// transfers with.
func (n *NodeRuntime) Model() *hwmodel.GPUModel { return n.devs[0].dev.Model() }

// AdmitOn registers a query with no explicit arrival time on device i
// (see DeviceRuntime.Admit).
func (n *NodeRuntime) AdmitOn(i int) *QueryStream { return n.devs[i].Admit() }

// AdmitAtOn registers a query arriving at an explicit point on device i's
// global timeline (see DeviceRuntime.AdmitAt).
func (n *NodeRuntime) AdmitAtOn(i int, arrival time.Duration) *QueryStream {
	return n.devs[i].AdmitAt(arrival)
}

// Backlogs reports each device's current compute backlog — the per-device
// load signal placement policies (sched.DevicePlacement) decide on.
func (n *NodeRuntime) Backlogs() []time.Duration {
	out := make([]time.Duration, len(n.devs))
	for i, rt := range n.devs {
		out[i] = rt.PendingTime()
	}
	return out
}

// BacklogsAt reports each device's compute backlog as seen by a query
// arriving at the given timeline point (the AdmitAtOn placement signal;
// see DeviceRuntime.PendingAt).
func (n *NodeRuntime) BacklogsAt(arrival time.Duration) []time.Duration {
	out := make([]time.Duration, len(n.devs))
	for i, rt := range n.devs {
		out[i] = rt.PendingAt(arrival)
	}
	return out
}

// PendingTime reports the least-loaded device's compute backlog — the
// node-level sched.DeviceBacklog view: a query admitted now would be
// placed on (at least) that device, so the node's effective backlog is
// the minimum, not the sum.
func (n *NodeRuntime) PendingTime() time.Duration {
	min := n.devs[0].PendingTime()
	for _, rt := range n.devs[1:] {
		if p := rt.PendingTime(); p < min {
			min = p
		}
	}
	return min
}

// SetSubmitHook installs the submission interceptor on device i (see
// DeviceRuntime.SetSubmitHook) — fault injectors install per-device hooks
// so injected faults carry the device id in their site names.
func (n *NodeRuntime) SetSubmitHook(i int, h SubmitHook) { n.devs[i].SetSubmitHook(h) }

// EnableBatching installs the cross-query batching stage on every device
// (see DeviceRuntime.EnableBatching); a disabled config removes it. Each
// device batches independently — batches never span devices, just as they
// never span real GPUs.
func (n *NodeRuntime) EnableBatching(cfg BatchConfig) {
	for _, rt := range n.devs {
		rt.EnableBatching(cfg)
	}
}

// BatchStats aggregates the devices' batching telemetry (zero value when
// batching is disabled).
func (n *NodeRuntime) BatchStats() BatchStats {
	var st BatchStats
	for _, rt := range n.devs {
		st.Add(rt.BatchStats())
	}
	return st
}

// DeviceBatchStats returns per-device batching telemetry in device order.
func (n *NodeRuntime) DeviceBatchStats() []BatchStats {
	out := make([]BatchStats, len(n.devs))
	for i, rt := range n.devs {
		out[i] = rt.BatchStats()
	}
	return out
}

// BatchSavings reports, per device, the fixed-cost rebate a freshly
// admitted query's compute work could expect from that device's open
// batches — the batch-aware complement of Backlogs that placement
// policies (sched.NodeInfo.BatchSaving) subtract from queue delay: a
// device with an open compatible batch is cheaper than its backlog alone
// suggests.
func (n *NodeRuntime) BatchSavings() []time.Duration {
	out := make([]time.Duration, len(n.devs))
	for i, rt := range n.devs {
		out[i] = rt.BatchSaving()
	}
	return out
}

// BatchSavingsAt is BatchSavings for a query arriving at an explicit
// point on the global timeline (the AdmitAtOn placement signal).
func (n *NodeRuntime) BatchSavingsAt(arrival time.Duration) []time.Duration {
	out := make([]time.Duration, len(n.devs))
	for i, rt := range n.devs {
		out[i] = rt.BatchSavingAt(arrival)
	}
	return out
}

// NodeStats is a telemetry snapshot of the whole node.
type NodeStats struct {
	// Devices has one runtime snapshot per device, in device order.
	Devices []RuntimeStats
	// Admitted, ComputeBusy, CopyBusy, and Waited aggregate across
	// devices.
	Admitted    int64
	ComputeBusy time.Duration
	CopyBusy    time.Duration
	Waited      time.Duration
	// Utilization is aggregate compute busy time over the devices' total
	// timeline capacity (sum over devices of streams x that device's
	// horizon), in [0,1].
	Utilization float64
}

// Stats snapshots every device.
func (n *NodeRuntime) Stats() NodeStats {
	st := NodeStats{Devices: make([]RuntimeStats, len(n.devs))}
	var capacity float64
	for i, rt := range n.devs {
		d := rt.Stats()
		st.Devices[i] = d
		st.Admitted += d.Admitted
		st.ComputeBusy += d.ComputeBusy
		st.CopyBusy += d.CopyBusy
		st.Waited += d.Waited
		capacity += float64(d.Streams) * float64(d.Horizon)
	}
	if capacity > 0 {
		st.Utilization = float64(st.ComputeBusy) / capacity
	}
	return st
}

// Utilization returns the node's aggregate compute utilization (see
// NodeStats.Utilization). For a single-device node it equals the device
// runtime's own Utilization.
func (n *NodeRuntime) Utilization() float64 { return n.Stats().Utilization }
