package gpu

import (
	"strings"
	"testing"

	"griffin/internal/hwmodel"
)

func TestProfilingRecordsTimeline(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	s := dev.NewStream()
	s.EnableProfiling()

	buf, err := s.H2D(make([]uint32, 256), 1024)
	if err != nil {
		t.Fatal(err)
	}
	s.Launch(&Kernel{Name: "probe", Grid: 2, Block: 64,
		Phases: []Phase{func(c *Ctx) { c.Op(1) }}})
	s.D2H(buf, 1024)

	events := s.Profile()
	if len(events) != 4 { // alloc (inside H2D) + h2d + launch + d2h
		t.Fatalf("got %d events: %+v", len(events), events)
	}
	wantKinds := []string{"alloc", "h2d", "launch", "d2h"}
	var prevEnd int64
	for i, e := range events {
		if e.Kind != wantKinds[i] {
			t.Fatalf("event %d kind %q, want %q", i, e.Kind, wantKinds[i])
		}
		if int64(e.Start) < prevEnd {
			t.Fatalf("event %d overlaps predecessor", i)
		}
		if e.Took <= 0 {
			t.Fatalf("event %d has no duration", i)
		}
		prevEnd = int64(e.Start + e.Took)
	}
	if events[2].Name != "probe" {
		t.Fatalf("launch name %q", events[2].Name)
	}
	// The timeline must account for the whole stream clock.
	last := events[len(events)-1]
	if last.Start+last.Took != s.Elapsed() {
		t.Fatalf("timeline end %v != stream clock %v", last.Start+last.Took, s.Elapsed())
	}

	report := s.ProfileReport()
	for _, want := range []string{"launch", "probe", "h2d", "d2h"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

func TestProfilingOffByDefault(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	s := dev.NewStream()
	if _, err := s.H2D(nil, 64); err != nil {
		t.Fatal(err)
	}
	if got := s.Profile(); got != nil {
		t.Fatalf("events recorded without profiling: %v", got)
	}
}
