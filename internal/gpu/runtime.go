// Device runtime: the device as a *shared, timed* resource.
//
// A Stream models one query's private view of the device: its clock is
// that query's service time, and two streams know nothing about each
// other. That is faithful to the paper's single-query prototype but
// makes multi-user load invisible — concurrent queries would each see an
// idle device. DeviceRuntime closes the gap: it owns a bounded set of
// simulated compute lanes (hardware stream slots) plus a copy-engine
// queue, tracks every admitted query on one global device timeline, and
// charges each submitted work item its modeled service cost *plus the
// queueing delay* it would have experienced behind work from other
// queries. Per-query simulated latency thereby becomes a function of
// offered load, while a query running alone reproduces the private-
// stream numbers exactly (zero queueing, bit-identical clocks).
package gpu

import (
	"sync"
	"time"
)

// EngineClass selects which of the device's hardware engines a submitted
// work item occupies. The K20's GK110 exposes dual copy engines (one per
// PCIe direction) alongside the compute engine, so uploads, downloads,
// and kernels all queue independently — in particular, one query's final
// result drain does not stall the next query's list upload.
type EngineClass int

const (
	// CopyEngine serializes host-to-device PCIe traffic (uploads).
	CopyEngine EngineClass = iota
	// CopyOutEngine serializes device-to-host PCIe traffic (downloads,
	// migrations, result drains).
	CopyOutEngine
	// ComputeEngine runs kernels (and their device-side allocations) on
	// one of the runtime's bounded compute lanes.
	ComputeEngine
)

// String implements fmt.Stringer.
func (c EngineClass) String() string {
	switch c {
	case CopyEngine:
		return "copy-in"
	case CopyOutEngine:
		return "copy-out"
	default:
		return "compute"
	}
}

// LaneSpan is one work item's occupancy interval on a runtime lane,
// recorded when runtime profiling is enabled. Start/End are points on
// the global device timeline.
type LaneSpan struct {
	Start, End time.Duration
	Query      int64 // admission id of the owning query
}

// lane is one serialized engine queue on the global timeline.
type lane struct {
	busyUntil time.Duration
	spans     []LaneSpan
}

// SubmitHook intercepts work-item submissions on a runtime, seeing the
// engine class and the item's ready position on the global timeline. A
// non-nil error fails the item before it runs or occupies any lane —
// the fault-injection seam (internal/fault wires injected kernel-launch
// failures, transfer errors, and device resets through it). The default
// is nil: un-hooked runtimes pay one pointer test per submission.
type SubmitHook func(class EngineClass, at time.Duration) error

// DeviceRuntime multiplexes one simulated device among concurrent
// queries. All methods are safe for concurrent use.
type DeviceRuntime struct {
	dev     *Device
	streams int
	hook    SubmitHook
	// index is the runtime's device ordinal within its NodeRuntime (0 for
	// a standalone runtime, which is indistinguishable from device 0 of a
	// single-device node).
	index int

	mu      sync.Mutex
	compute []lane
	copyEng [2]lane // [0] host-to-device, [1] device-to-host
	// clock is the runtime's notion of "now" for untimed admissions: it
	// advances to the busy horizon whenever the device goes idle, so a
	// query arriving at an idle device sees zero backlog (contention-free
	// parity), while queries overlapping in wall time share one epoch and
	// contend on the timeline.
	clock  time.Duration
	active int

	admitted    int64
	computeBusy time.Duration
	copyBusy    time.Duration
	waited      time.Duration
	horizon     time.Duration
	profiling   bool
	// batch is the cross-query batching stage (nil = disabled, the
	// pre-batching submission path bit for bit). See batcher.go.
	batch *batcher
}

// NewRuntime returns a runtime over dev with the given number of compute
// lanes (simulated stream slots); streams <= 0 means 1, the K20's single
// compute engine. The dual copy engines are always one queue per PCIe
// direction, as on the GK110.
func NewRuntime(dev *Device, streams int) *DeviceRuntime {
	if streams <= 0 {
		streams = 1
	}
	return &DeviceRuntime{dev: dev, streams: streams, compute: make([]lane, streams)}
}

// Device returns the underlying simulated device.
func (rt *DeviceRuntime) Device() *Device { return rt.dev }

// Index returns the runtime's device ordinal within its node (0 for a
// standalone runtime).
func (rt *DeviceRuntime) Index() int { return rt.index }

// SetSubmitHook installs (or, with nil, removes) the submission
// interceptor. Install hooks before serving traffic: the hook field is
// read under the runtime lock, but swapping it mid-workload makes the
// modeled timeline depend on the swap's wall-clock timing.
func (rt *DeviceRuntime) SetSubmitHook(h SubmitHook) {
	rt.mu.Lock()
	rt.hook = h
	rt.mu.Unlock()
}

// Streams returns the number of compute lanes.
func (rt *DeviceRuntime) Streams() int { return rt.streams }

// EnableProfiling turns on lane-occupancy recording (LaneSpans). Like
// stream profiling it costs nothing on the simulated clocks.
func (rt *DeviceRuntime) EnableProfiling() {
	rt.mu.Lock()
	rt.profiling = true
	rt.mu.Unlock()
}

// ComputeSpans returns a copy of each compute lane's recorded occupancy
// intervals (profiling only).
func (rt *DeviceRuntime) ComputeSpans() [][]LaneSpan {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([][]LaneSpan, len(rt.compute))
	for i := range rt.compute {
		out[i] = append([]LaneSpan(nil), rt.compute[i].spans...)
	}
	return out
}

// CopySpans returns a copy of each copy engine's recorded occupancy
// intervals (profiling only): index 0 is host-to-device, 1 is
// device-to-host.
func (rt *DeviceRuntime) CopySpans() [][]LaneSpan {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([][]LaneSpan, len(rt.copyEng))
	for i := range rt.copyEng {
		out[i] = append([]LaneSpan(nil), rt.copyEng[i].spans...)
	}
	return out
}

// QueryStream is one admitted query's handle on the runtime: a private
// Stream carrying the query's service time plus an anchor placing that
// stream on the global device timeline. Submit work through it; Release
// it when the query completes.
type QueryStream struct {
	rt     *DeviceRuntime
	s      *Stream
	id     int64
	anchor time.Duration

	mu       sync.Mutex
	waited   time.Duration
	released bool
}

// Admit registers a query with no explicit arrival time (the service
// path: Search, SearchBatch, HTTP handlers). If the device is idle the
// query is anchored past all previously accumulated work — it sees no
// backlog — otherwise it joins the in-flight queries' epoch and contends
// with them on the timeline.
func (rt *DeviceRuntime) Admit() *QueryStream {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.active == 0 {
		if rt.horizon > rt.clock {
			rt.clock = rt.horizon
		}
		// The device drained before this query arrived: no prior query's
		// work is still pending, so no open batch may absorb this query's
		// ops. (Timed admissions — AdmitAt — never flush: their overlap
		// lives on the simulated timeline, not in wall clock.)
		if rt.batch != nil {
			rt.batch.flushAll()
		}
	}
	return rt.admitLocked(rt.clock)
}

// AdmitAt registers a query arriving at an explicit point on the global
// timeline — the load-study path, where a driver generates simulated
// (e.g. Poisson) arrivals and executes queries in arrival order. Backlog
// left by earlier-arriving queries delays this one even though the
// driver runs queries one at a time in wall clock.
func (rt *DeviceRuntime) AdmitAt(arrival time.Duration) *QueryStream {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if arrival > rt.clock {
		rt.clock = arrival
	}
	return rt.admitLocked(arrival)
}

func (rt *DeviceRuntime) admitLocked(anchor time.Duration) *QueryStream {
	rt.admitted++
	rt.active++
	return &QueryStream{rt: rt, s: rt.dev.NewStream(), id: rt.admitted, anchor: anchor}
}

// Release returns the query's slot; the runtime fast-forwards its idle
// clock when the last in-flight query leaves. Releasing twice is a no-op.
func (h *QueryStream) Release() {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return
	}
	h.released = true
	h.mu.Unlock()
	rt := h.rt
	rt.mu.Lock()
	rt.active--
	rt.mu.Unlock()
}

// Stream returns the query's underlying stream (for profiling and for
// reading the query's simulated clock).
func (h *QueryStream) Stream() *Stream { return h.s }

// Waited returns the total queueing delay charged to this query so far.
func (h *QueryStream) Waited() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.waited
}

// Arrival returns the query's anchor on the global device timeline.
func (h *QueryStream) Arrival() time.Duration { return h.anchor }

// Device returns the ordinal of the device this query was admitted to
// within its node (0 on a standalone runtime) — the id exec operators and
// plan records carry.
func (h *QueryStream) Device() int { return h.rt.index }

// Submit runs one unkeyed work item on the given engine — SubmitOp
// without batch participation (warmup preloads and legacy callers).
func (h *QueryStream) Submit(class EngineClass, fn func(*Stream) error) error {
	_, err := h.SubmitOp(class, "", fn)
	return err
}

// SubmitOp runs one work item on the given engine. The item becomes
// ready at the query's current position on the global timeline (anchor +
// stream clock); if the chosen engine lane is still busy with other
// queries' work, the difference is charged to the query's stream as
// queueing delay *before* fn runs, then fn executes on the stream and
// its service time occupies the lane. fn's error is returned unchanged.
//
// key names the item's batch-compatibility class (exec.Op.BatchKey).
// When the runtime's batching stage is enabled and key is non-empty, the
// item is placed into a per-(engine, key) batch whose coalescing window
// covers its ready position and that holds no other op of this query
// (batching is strictly cross-query): the batch leader pays full cost,
// while followers are rebated the fixed component of their charged time
// (launch/DMA/alloc overheads) minus the per-member marginal cost —
// their kernels ride the leader's launch. The rebate shrinks both the
// query's stream clock and the lane occupancy, which is where batched
// throughput comes from; results are untouched. An empty key, a disabled
// stage, or a failed item opts out entirely and the returned membership
// is the zero Batched.
//
// The runtime lock is held across fn: work items serialize in wall
// clock (kernels stay internally parallel on the block worker pool),
// which makes admission order — and therefore the whole timeline —
// coherent without reservations.
func (h *QueryStream) SubmitOp(class EngineClass, key string, fn func(*Stream) error) (Batched, error) {
	rt := h.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()

	ready := h.anchor + h.s.Elapsed()
	if rt.hook != nil {
		if err := rt.hook(class, ready); err != nil {
			return Batched{}, err
		}
	}
	ln := rt.pickLane(class)
	start := ready
	if ln.busyUntil > start {
		start = ln.busyUntil
	}
	if delay := start - ready; delay > 0 {
		h.s.record("wait", class.String(), 0, h.s.elapsed, delay)
		h.s.elapsed += delay
		h.mu.Lock()
		h.waited += delay
		h.mu.Unlock()
		rt.waited += delay
	}

	fixedBefore := h.s.fixed
	before := h.s.Elapsed()
	err := fn(h.s)
	took := h.s.Elapsed() - before

	var m Batched
	if err == nil && rt.batch != nil && key != "" {
		fixed := h.s.fixed - fixedBefore
		var rebate time.Duration
		m, rebate = rt.batch.admit(class, key, h.id, ready, fixed, rt.dev.model.BatchMemberOverhead, took)
		if rebate > 0 {
			// Credit the follower's share of the already-paid fixed costs
			// back to its stream (a negative-duration profile event keeps
			// the per-op timeline reconstructible).
			h.s.record("batch", key, int64(m.Seq), h.s.elapsed, -rebate)
			h.s.elapsed -= rebate
			took -= rebate
		}
	}

	end := start + took
	ln.busyUntil = end
	if rt.profiling && took > 0 {
		ln.spans = append(ln.spans, LaneSpan{Start: start, End: end, Query: h.id})
	}
	if class == ComputeEngine {
		rt.computeBusy += took
	} else {
		rt.copyBusy += took
	}
	if end > rt.horizon {
		rt.horizon = end
	}
	return m, err
}

// pickLane selects the least-loaded lane of the class (each copy
// direction is a single queue).
func (rt *DeviceRuntime) pickLane(class EngineClass) *lane {
	switch class {
	case CopyEngine:
		return &rt.copyEng[0]
	case CopyOutEngine:
		return &rt.copyEng[1]
	}
	best := &rt.compute[0]
	for i := 1; i < len(rt.compute); i++ {
		if rt.compute[i].busyUntil < best.busyUntil {
			best = &rt.compute[i]
		}
	}
	return best
}

// PendingTime reports the queueing delay a kernel submitted by this
// query right now would experience: how far past the query's current
// timeline position the earliest compute lane frees up. Load-aware
// scheduling policies (sched.LoadAwarePolicy) read it to decide whether
// the device is worth waiting for.
func (h *QueryStream) PendingTime() time.Duration {
	rt := h.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ready := h.anchor + h.s.Elapsed()
	return rt.pendingLocked(ready)
}

// PendingTime reports the compute backlog a query admitted right now
// would face: the earliest compute lane's remaining busy time relative
// to the runtime clock. Zero when the device is idle.
func (rt *DeviceRuntime) PendingTime() time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.active == 0 {
		return 0
	}
	return rt.pendingLocked(rt.clock)
}

// PendingAt reports the compute backlog a query arriving at the given
// point on the global timeline (AdmitAt) would face. Unlike PendingTime
// it does not treat an idle device as backlog-free: in discrete-event
// load studies the lanes legitimately hold work scheduled past the
// arrival even when no query is in flight in wall clock, and that
// residual is exactly the queueing delay the arrival would be charged.
func (rt *DeviceRuntime) PendingAt(arrival time.Duration) time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.pendingLocked(arrival)
}

func (rt *DeviceRuntime) pendingLocked(ready time.Duration) time.Duration {
	minBusy := rt.compute[0].busyUntil
	for i := 1; i < len(rt.compute); i++ {
		if rt.compute[i].busyUntil < minBusy {
			minBusy = rt.compute[i].busyUntil
		}
	}
	if minBusy > ready {
		return minBusy - ready
	}
	return 0
}

// RuntimeStats is a telemetry snapshot of the runtime.
type RuntimeStats struct {
	// Streams is the compute-lane count; Active and Admitted count
	// in-flight and lifetime admitted queries.
	Streams  int
	Active   int
	Admitted int64
	// ComputeBusy and CopyBusy are aggregate engine service time;
	// Waited is total queueing delay charged across all queries.
	ComputeBusy time.Duration
	CopyBusy    time.Duration
	Waited      time.Duration
	// Horizon is the busy frontier of the global timeline; Backlog the
	// current compute backlog (PendingTime).
	Horizon time.Duration
	Backlog time.Duration
	// Utilization is ComputeBusy over the compute lanes' total timeline
	// capacity (Streams x Horizon), in [0,1].
	Utilization float64
}

// Stats returns a telemetry snapshot.
func (rt *DeviceRuntime) Stats() RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := RuntimeStats{
		Streams:     rt.streams,
		Active:      rt.active,
		Admitted:    rt.admitted,
		ComputeBusy: rt.computeBusy,
		CopyBusy:    rt.copyBusy,
		Waited:      rt.waited,
		Horizon:     rt.horizon,
	}
	if rt.active > 0 {
		st.Backlog = rt.pendingLocked(rt.clock)
	}
	if rt.horizon > 0 {
		st.Utilization = float64(rt.computeBusy) / (float64(rt.streams) * float64(rt.horizon))
	}
	return st
}

// Utilization returns compute-engine utilization over the timeline so
// far, in [0,1].
func (rt *DeviceRuntime) Utilization() float64 { return rt.Stats().Utilization }
