package gpu

import (
	"testing"
	"time"

	"griffin/internal/hwmodel"
)

// A single-device node must be indistinguishable from a bare
// DeviceRuntime: same clocks, same queueing, same stats — the parity
// guarantee core.Engine relies on at devices=1.
func TestNodeSingleDeviceParity(t *testing.T) {
	run := func(admit func(i int) *QueryStream, stats func() RuntimeStats) (time.Duration, RuntimeStats) {
		var last time.Duration
		for i := 0; i < 3; i++ {
			h := admit(i)
			last = runQueryOps(t, h)
			if h.Device() != 0 {
				t.Fatalf("query on device %d, want 0", h.Device())
			}
			h.Release()
		}
		return last, stats()
	}

	rt := NewRuntime(New(hwmodel.DefaultGPU(), 0), 2)
	refClock, refStats := run(func(int) *QueryStream { return rt.Admit() }, rt.Stats)

	node := NewNode(New(hwmodel.DefaultGPU(), 0), 1, 2)
	if node.Devices() != 1 {
		t.Fatalf("Devices() = %d, want 1", node.Devices())
	}
	gotClock, gotStats := run(func(int) *QueryStream { return node.AdmitOn(0) }, func() RuntimeStats {
		return node.Runtime(0).Stats()
	})

	if gotClock != refClock {
		t.Fatalf("node clock %v != standalone %v", gotClock, refClock)
	}
	if gotStats != refStats {
		t.Fatalf("node device stats %+v != standalone %+v", gotStats, refStats)
	}
	ns := node.Stats()
	if ns.Admitted != refStats.Admitted || ns.ComputeBusy != refStats.ComputeBusy ||
		ns.CopyBusy != refStats.CopyBusy || ns.Waited != refStats.Waited {
		t.Fatalf("node aggregates %+v do not match device stats %+v", ns, refStats)
	}
	if ns.Utilization != refStats.Utilization {
		t.Fatalf("node utilization %v != device utilization %v", ns.Utilization, refStats.Utilization)
	}
	if node.Utilization() != rt.Utilization() {
		t.Fatalf("Utilization() %v != standalone %v", node.Utilization(), rt.Utilization())
	}
}

// Devices have independent timelines: two queries admitted into the same
// epoch on different devices contend with nobody, while the same pair on
// one device charges the second query the first's service time.
func TestNodeDeviceTimelinesIndependent(t *testing.T) {
	node := NewNode(New(hwmodel.DefaultGPU(), 0), 2, 1)

	h0 := node.AdmitOn(0)
	h1 := node.AdmitOn(1)
	if h0.Device() != 0 || h1.Device() != 1 {
		t.Fatalf("device ids %d/%d, want 0/1", h0.Device(), h1.Device())
	}
	submit := func(h *QueryStream) {
		if err := h.Submit(ComputeEngine, func(s *Stream) error {
			s.Launch(testKernel("k"))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	submit(h0)
	submit(h1)
	if h0.Waited() != 0 || h1.Waited() != 0 {
		t.Fatalf("cross-device queueing charged: dev0 %v, dev1 %v", h0.Waited(), h1.Waited())
	}
	if h0.Stream().Elapsed() != h1.Stream().Elapsed() {
		t.Fatalf("identical kernels on sibling devices cost %v vs %v",
			h0.Stream().Elapsed(), h1.Stream().Elapsed())
	}
	h0.Release()
	h1.Release()

	// Same pair forced onto one device: the second query queues.
	one := NewNode(New(hwmodel.DefaultGPU(), 0), 2, 1)
	a, b := one.AdmitOn(0), one.AdmitOn(0)
	submit(a)
	submit(b)
	if b.Waited() == 0 {
		t.Fatal("same-device contention charged no queueing delay")
	}
	a.Release()
	b.Release()
}

// Device memory is private per device: an allocation on device 1 does not
// consume device 0's capacity.
func TestNodeDeviceMemoryIsPrivate(t *testing.T) {
	node := NewNode(New(hwmodel.DefaultGPU(), 0), 2, 1)
	h := node.AdmitOn(1)
	defer h.Release()
	if err := h.Submit(CopyEngine, func(s *Stream) error {
		_, err := s.H2D(make([]byte, 1<<20), 1<<20)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := node.Runtime(1).Device().Allocated(); got != 1<<20 {
		t.Fatalf("device 1 allocated %d, want %d", got, 1<<20)
	}
	if got := node.Runtime(0).Device().Allocated(); got != 0 {
		t.Fatalf("device 0 allocated %d after a device-1 upload", got)
	}
}

// Backlogs reports per-device load and PendingTime the minimum — the
// node-level routing signal: a new query would land on the idle device.
func TestNodeBacklogsAndPendingTime(t *testing.T) {
	node := NewNode(New(hwmodel.DefaultGPU(), 0), 2, 1)
	h := node.AdmitOn(0)
	defer h.Release()
	if err := h.Submit(ComputeEngine, func(s *Stream) error {
		s.Launch(testKernel("busy"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	bl := node.Backlogs()
	if len(bl) != 2 {
		t.Fatalf("Backlogs() len %d", len(bl))
	}
	if bl[0] == 0 {
		t.Fatal("loaded device reports zero backlog")
	}
	if bl[1] != 0 {
		t.Fatalf("idle device reports backlog %v", bl[1])
	}
	if node.PendingTime() != 0 {
		t.Fatalf("node PendingTime %v with an idle device", node.PendingTime())
	}
}

// PeerIn charges the peer-interconnect price — cheaper than the host PCIe
// path for large transfers under the default model, which is what makes
// sibling-cache copies worth preferring.
func TestNodePeerTransferPricing(t *testing.T) {
	model := hwmodel.DefaultGPU()
	node := NewNode(New(model, 0), 2, 1)

	const bytes = 8 << 20
	h := node.AdmitOn(1)
	defer h.Release()
	var peerElapsed time.Duration
	if err := h.Submit(CopyEngine, func(s *Stream) error {
		before := s.Elapsed()
		b, err := s.PeerIn(make([]byte, bytes), bytes)
		if err != nil {
			return err
		}
		peerElapsed = s.Elapsed() - before
		b.Free()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := model.AllocTime(bytes) + model.PeerTransferTime(bytes)
	if peerElapsed != want {
		t.Fatalf("PeerIn charged %v, want alloc+peer %v", peerElapsed, want)
	}
	if hostPath := model.AllocTime(bytes) + model.TransferTime(bytes); peerElapsed >= hostPath {
		t.Fatalf("peer path %v not cheaper than host path %v for %d bytes",
			peerElapsed, hostPath, bytes)
	}
}

// WrapNode adopts caller-built runtimes and re-indexes them in wrap
// order, so handles report the node-relative device id.
func TestWrapNodeReindexes(t *testing.T) {
	a := NewRuntime(New(hwmodel.DefaultGPU(), 0), 1)
	b := NewRuntime(New(hwmodel.DefaultGPU(), 0), 1)
	node := WrapNode(a, b)
	if node.Devices() != 2 {
		t.Fatalf("Devices() = %d", node.Devices())
	}
	if node.Runtime(0) != a || node.Runtime(1) != b {
		t.Fatal("wrap order not preserved")
	}
	if a.Index() != 0 || b.Index() != 1 {
		t.Fatalf("indices %d/%d, want 0/1", a.Index(), b.Index())
	}
	h := node.AdmitOn(1)
	if h.Device() != 1 {
		t.Fatalf("handle device %d, want 1", h.Device())
	}
	h.Release()
}
