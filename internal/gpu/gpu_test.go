package gpu

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"griffin/internal/hwmodel"
)

func newTestDevice() *Device {
	return New(hwmodel.DefaultGPU(), 0)
}

func TestAllocAccounting(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	b1, err := s.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Alloc(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Allocated(); got != 3<<20 {
		t.Fatalf("Allocated = %d, want %d", got, 3<<20)
	}
	b1.Free()
	if got := d.Allocated(); got != 2<<20 {
		t.Fatalf("after free: %d, want %d", got, 2<<20)
	}
	b1.Free() // double free is a no-op
	if got := d.Allocated(); got != 2<<20 {
		t.Fatalf("double free changed accounting: %d", got)
	}
	b2.Free()
	if got := d.Allocated(); got != 0 {
		t.Fatalf("after all frees: %d", got)
	}
}

func TestOutOfMemory(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	if _, err := s.Alloc(d.Model().MemoryBytes + 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Fill most of memory, then overflow.
	b, err := s.Alloc(d.Model().MemoryBytes - 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(200); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	b.Free()
	if _, err := s.Alloc(200); err != nil {
		t.Fatalf("after free: %v", err)
	}
}

func TestStreamClockAdvances(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	if s.Elapsed() != 0 {
		t.Fatal("fresh stream clock not zero")
	}
	if _, err := s.H2D(make([]uint32, 1024), 4096); err != nil {
		t.Fatal(err)
	}
	afterH2D := s.Elapsed()
	if afterH2D < d.Model().PCIeLatency {
		t.Fatalf("H2D charged %v, below PCIe latency", afterH2D)
	}
	s.AddTime(time.Millisecond)
	if s.Elapsed() != afterH2D+time.Millisecond {
		t.Fatal("AddTime did not advance clock")
	}
}

func TestD2HReturnsPayloadAndCharges(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	payload := []uint32{1, 2, 3}
	b, err := s.H2D(payload, 12)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Elapsed()
	got := s.D2H(b, 12)
	if s.Elapsed() <= before {
		t.Fatal("D2H did not charge time")
	}
	if &got.([]uint32)[0] != &payload[0] {
		t.Fatal("D2H payload mismatch")
	}
}

func TestKernelExecutesAllThreads(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	const grid, block = 37, 64
	seen := make([]int32, grid*block)
	s.Launch(&Kernel{
		Name: "touch", Grid: grid, Block: block,
		Phases: []Phase{func(c *Ctx) {
			atomic.AddInt32(&seen[c.GlobalID()], 1)
		}},
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("thread %d executed %d times", i, v)
		}
	}
}

func TestKernelPhasesAreBarriers(t *testing.T) {
	// Phase 1 writes per-thread values; phase 2 reads values written by
	// *other* blocks. Correct only if a device-wide barrier separates the
	// phases.
	d := newTestDevice()
	s := d.NewStream()
	const grid, block = 64, 128
	n := grid * block
	data := make([]int64, n)
	ok := make([]int32, n)
	s.Launch(&Kernel{
		Name: "barrier", Grid: grid, Block: block,
		Phases: []Phase{
			func(c *Ctx) { data[c.GlobalID()] = int64(c.GlobalID()) * 3 },
			func(c *Ctx) {
				// Read a value owned by a different block.
				peer := (c.GlobalID() + block*7) % n
				if data[peer] == int64(peer)*3 {
					ok[c.GlobalID()] = 1
				}
			},
		},
	})
	for i, v := range ok {
		if v != 1 {
			t.Fatalf("thread %d observed stale cross-block data", i)
		}
	}
}

func TestSharedMemoryPerBlock(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	const grid, block = 16, 32
	sums := make([]int64, grid)
	s.Launch(&Kernel{
		Name: "shared", Grid: grid, Block: block,
		SharedBytes: block * 8,
		MakeShared:  func(b int) any { return make([]int64, block) },
		Phases: []Phase{
			func(c *Ctx) {
				sh := c.Shared.([]int64)
				sh[c.Thread] = int64(c.Block)
			},
			func(c *Ctx) {
				if c.Thread != 0 {
					return
				}
				sh := c.Shared.([]int64)
				var sum int64
				for _, v := range sh {
					sum += v
				}
				sums[c.Block] = sum
			},
		},
	})
	for b, sum := range sums {
		if sum != int64(b)*block {
			t.Fatalf("block %d shared sum = %d, want %d", b, sum, int64(b)*block)
		}
	}
}

func TestLaunchStatsCollected(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	const grid, block = 8, 32
	st := s.Launch(&Kernel{
		Name: "count", Grid: grid, Block: block,
		Phases: []Phase{func(c *Ctx) {
			c.Op(3)
			c.GlobalRead(4)
			c.GlobalWrite(8)
			c.SharedAccess(2)
			c.DivergentOp(1)
			c.UncoalescedRead(4)
		}},
	})
	n := int64(grid * block)
	if st.Ops != 3*n {
		t.Errorf("Ops = %d, want %d", st.Ops, 3*n)
	}
	if st.GlobalReadBytes != 8*n { // 4 coalesced + 4 uncoalesced
		t.Errorf("GlobalReadBytes = %d, want %d", st.GlobalReadBytes, 8*n)
	}
	if st.GlobalWriteBytes != 8*n {
		t.Errorf("GlobalWriteBytes = %d, want %d", st.GlobalWriteBytes, 8*n)
	}
	if st.SharedBytes != 2*n {
		t.Errorf("SharedBytes = %d, want %d", st.SharedBytes, 2*n)
	}
	if st.DivergentOps != n {
		t.Errorf("DivergentOps = %d, want %d", st.DivergentOps, n)
	}
	if st.UncoalescedBytes != 4*n {
		t.Errorf("UncoalescedBytes = %d, want %d", st.UncoalescedBytes, 4*n)
	}
	if st.Phases != 1 || st.Blocks != grid || st.ThreadsPerBlock != block {
		t.Errorf("geometry: %+v", st)
	}
}

func TestLaunchChargesTime(t *testing.T) {
	d := newTestDevice()
	s := d.NewStream()
	before := s.Elapsed()
	s.Launch(&Kernel{Name: "noop", Grid: 1, Block: 1, Phases: []Phase{func(c *Ctx) {}}})
	if s.Elapsed()-before < d.Model().LaunchOverhead {
		t.Fatal("launch did not charge at least the launch overhead")
	}
	if d.Launches() != 1 {
		t.Fatalf("Launches = %d, want 1", d.Launches())
	}
}

func TestStreamsIndependentClocks(t *testing.T) {
	d := newTestDevice()
	s1, s2 := d.NewStream(), d.NewStream()
	if _, err := s1.H2D(nil, 1<<20); err != nil {
		t.Fatal(err)
	}
	if s2.Elapsed() != 0 {
		t.Fatal("stream clocks are not independent")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 8} {
			hits := make([]int32, n)
			parallelFor(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ n, block, want int }{
		{0, 128, 1}, {1, 128, 1}, {128, 128, 1}, {129, 128, 2}, {1000, 256, 4},
	}
	for _, c := range cases {
		if got := GridFor(c.n, c.block); got != c.want {
			t.Errorf("GridFor(%d,%d) = %d, want %d", c.n, c.block, got, c.want)
		}
	}
}

func BenchmarkLaunchOverheadFunctional(b *testing.B) {
	d := newTestDevice()
	s := d.NewStream()
	k := &Kernel{Name: "noop", Grid: 64, Block: 128, Phases: []Phase{func(c *Ctx) { c.Op(1) }}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Launch(k)
	}
}
