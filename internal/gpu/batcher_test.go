package gpu

import (
	"sync"
	"testing"
	"time"

	"griffin/internal/hwmodel"
)

// launchOp submits one keyed compute kernel through the handle and
// returns its batch membership.
func launchOp(t *testing.T, h *QueryStream, key string) Batched {
	t.Helper()
	m, err := h.SubmitOp(ComputeEngine, key, func(s *Stream) error {
		s.Launch(testKernel("work"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Two queries admitted into the same epoch submitting the same kernel
// family coalesce: the leader pays full cost, the follower is rebated
// the launch overhead minus the per-member marginal cost.
func TestBatcherCoalescesAcrossQueries(t *testing.T) {
	model := hwmodel.DefaultGPU()
	dev := New(model, 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: time.Millisecond})

	h1 := rt.Admit()
	h2 := rt.Admit()
	defer h1.Release()
	defer h2.Release()

	m1 := launchOp(t, h1, "intersect:mergepath")
	service := h1.Stream().Elapsed()
	m2 := launchOp(t, h2, "intersect:mergepath")

	if m1.ID == 0 || m1.Seq != 1 || m1.Saved != 0 {
		t.Fatalf("leader membership %+v", m1)
	}
	wantRebate := model.LaunchOverhead - model.BatchMemberOverhead
	if m2.ID != m1.ID || m2.Seq != 2 || m2.Saved != wantRebate {
		t.Fatalf("follower membership %+v, want batch %d seq 2 saved %v", m2, m1.ID, wantRebate)
	}
	// The follower's clock: waited behind the leader's service, ran the
	// same kernel, got the rebate back.
	if got, want := h2.Stream().Elapsed(), service+service-wantRebate; got != want {
		t.Fatalf("follower clock %v, want %v", got, want)
	}
	st := rt.BatchStats()
	if st.Batches != 1 || st.Members != 2 || st.Saved != wantRebate {
		t.Fatalf("stats %+v", st)
	}
}

// A batch holds at most one op per query: a single query's back-to-back
// ops of one family open parallel batches instead of self-coalescing, so
// an isolated query's timeline is bit-identical to batching disabled.
func TestBatcherNeverSelfBatches(t *testing.T) {
	run := func(window time.Duration) (time.Duration, [2]Batched) {
		dev := New(hwmodel.DefaultGPU(), 0)
		rt := NewRuntime(dev, 1)
		rt.EnableBatching(BatchConfig{Window: window})
		h := rt.Admit()
		defer h.Release()
		var ms [2]Batched
		ms[0] = launchOp(t, h, "decompress")
		ms[1] = launchOp(t, h, "decompress")
		return h.Stream().Elapsed(), ms
	}
	offClock, _ := run(0)
	onClock, ms := run(10 * time.Millisecond)
	if onClock != offClock {
		t.Fatalf("isolated query clock moved with batching on: %v vs %v", onClock, offClock)
	}
	if ms[0].Seq != 1 || ms[1].Seq != 1 {
		t.Fatalf("same-query ops joined one batch: %+v", ms)
	}
	if ms[0].ID == ms[1].ID {
		t.Fatalf("same-query ops share batch %d", ms[0].ID)
	}
	if ms[0].Saved != 0 || ms[1].Saved != 0 {
		t.Fatalf("isolated query collected a rebate: %+v", ms)
	}
}

// Parallel batches pack by position: with two overlapping queries each
// submitting two ops of one family, op i of each query shares batch i.
func TestBatcherParallelBatchesAlignByPosition(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: 50 * time.Millisecond})

	h1 := rt.Admit()
	h2 := rt.Admit()
	defer h1.Release()
	defer h2.Release()

	a1 := launchOp(t, h1, "upload")
	a2 := launchOp(t, h1, "upload")
	b1 := launchOp(t, h2, "upload")
	b2 := launchOp(t, h2, "upload")

	if b1.ID != a1.ID || b1.Seq != 2 {
		t.Fatalf("q2 op1 %+v did not join q1 op1's batch %d", b1, a1.ID)
	}
	if b2.ID != a2.ID || b2.Seq != 2 {
		t.Fatalf("q2 op2 %+v did not join q1 op2's batch %d", b2, a2.ID)
	}
}

// An op whose ready position falls past an open batch's window retires
// that batch (window flush) and leads a fresh one.
func TestBatcherWindowFlush(t *testing.T) {
	const window = 100 * time.Microsecond
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: window})

	h1 := rt.AdmitAt(0)
	h2 := rt.AdmitAt(window * 2) // ready past h1's window
	defer h1.Release()
	defer h2.Release()

	m1 := launchOp(t, h1, "k")
	m2 := launchOp(t, h2, "k")
	if m2.ID == m1.ID || m2.Seq != 1 || m2.Saved != 0 {
		t.Fatalf("late op joined expired batch: %+v after %+v", m2, m1)
	}
	st := rt.BatchStats()
	if st.Batches != 2 || st.WindowFlushes != 1 || st.SizeFlushes != 0 {
		t.Fatalf("stats %+v, want 2 batches with 1 window flush", st)
	}
}

// A batch reaching Max members closes early (size flush); the next
// compatible op leads a new batch.
func TestBatcherSizeFlush(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: 50 * time.Millisecond, Max: 2})

	hs := []*QueryStream{rt.Admit(), rt.Admit(), rt.Admit()}
	var ms []Batched
	for _, h := range hs {
		defer h.Release()
		ms = append(ms, launchOp(t, h, "k"))
	}
	if ms[1].ID != ms[0].ID || ms[1].Seq != 2 {
		t.Fatalf("second op %+v did not fill the first batch %+v", ms[1], ms[0])
	}
	if ms[2].ID == ms[0].ID || ms[2].Seq != 1 {
		t.Fatalf("third op %+v joined a size-flushed batch", ms[2])
	}
	st := rt.BatchStats()
	if st.SizeFlushes != 1 || st.Batches != 2 {
		t.Fatalf("stats %+v, want 1 size flush over 2 batches", st)
	}
}

// A drained device forfeits its open batches: queries separated by an
// idle gap never overlapped, so the second must not collect a rebate
// from the first's launch.
func TestBatcherDrainedDeviceFlushes(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: time.Hour}) // window alone would never expire

	h1 := rt.Admit()
	m1 := launchOp(t, h1, "k")
	h1.Release()

	h2 := rt.Admit() // device drained: admission flushes all open batches
	defer h2.Release()
	m2 := launchOp(t, h2, "k")
	if m2.ID == m1.ID || m2.Saved != 0 {
		t.Fatalf("sequential query rode a drained batch: %+v after %+v", m2, m1)
	}
	if st := rt.BatchStats(); st.WindowFlushes != 1 {
		t.Fatalf("stats %+v, want the drain counted as a window flush", st)
	}
}

// Unkeyed submissions opt out of batching entirely.
func TestBatcherIgnoresUnkeyedOps(t *testing.T) {
	dev := New(hwmodel.DefaultGPU(), 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: time.Millisecond})
	h1, h2 := rt.Admit(), rt.Admit()
	defer h1.Release()
	defer h2.Release()
	launchOp(t, h1, "")
	launchOp(t, h2, "")
	if st := rt.BatchStats(); st != (BatchStats{}) {
		t.Fatalf("unkeyed ops touched the batcher: %+v", st)
	}
}

// Concurrently admitted queries racing their submissions into one window
// coalesce into exactly one batch — the -race exercise of the admission→
// batch→submit pipeline: every member lands in the same batch with a
// distinct ordinal and everyone but the leader collects the same rebate.
func TestBatcherConcurrentAdmissionsOneBatch(t *testing.T) {
	const n = 8
	model := hwmodel.DefaultGPU()
	dev := New(model, 0)
	rt := NewRuntime(dev, 1)
	rt.EnableBatching(BatchConfig{Window: time.Hour, Max: n})

	// Admit every query before any submits so the device never drains
	// mid-test (a drain would flush the open batch).
	hs := make([]*QueryStream, n)
	for i := range hs {
		hs[i] = rt.Admit()
	}
	ms := make([]Batched, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, h := range hs {
		wg.Add(1)
		go func(i int, h *QueryStream) {
			defer wg.Done()
			ms[i], errs[i] = h.SubmitOp(ComputeEngine, "intersect:mergepath", func(s *Stream) error {
				s.Launch(testKernel("work"))
				return nil
			})
		}(i, h)
	}
	wg.Wait()
	for _, h := range hs {
		h.Release()
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}

	seqs := make(map[int]bool)
	wantRebate := model.LaunchOverhead - model.BatchMemberOverhead
	for i, m := range ms {
		if m.ID != ms[0].ID {
			t.Fatalf("member %d in batch %d, want %d", i, m.ID, ms[0].ID)
		}
		if m.Seq < 1 || m.Seq > n || seqs[m.Seq] {
			t.Fatalf("member %d has bad ordinal %d (seen %v)", i, m.Seq, seqs)
		}
		seqs[m.Seq] = true
		if m.Seq == 1 && m.Saved != 0 {
			t.Fatalf("leader %d collected rebate %v", i, m.Saved)
		}
		if m.Seq > 1 && m.Saved != wantRebate {
			t.Fatalf("follower %d rebated %v, want %v", i, m.Saved, wantRebate)
		}
	}
	st := rt.BatchStats()
	if st.Batches != 1 || st.Members != n || st.SizeFlushes != 1 {
		t.Fatalf("stats %+v, want one full batch of %d", st, n)
	}
	if st.Saved != time.Duration(n-1)*wantRebate {
		t.Fatalf("saved %v, want %v", st.Saved, time.Duration(n-1)*wantRebate)
	}
}
